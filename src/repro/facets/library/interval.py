"""The Interval (range) facet over the integer algebra.

The paper's footnote 1 explicitly allows facet domains of infinite
height provided a widening operator makes fixpoints finite; the classic
example is the interval domain, and "ranges" is one of the properties
Section 1 names.  This facet demonstrates that path: its lattice
overrides :meth:`~repro.lattice.core.Lattice.widen` to jump unstable
bounds to infinity, and the facet analysis engages widening whenever any
facet's domain is not of finite height.

Elements are ``Interval(lo, hi)`` with ``None`` meaning unbounded on
that side; a dedicated bottom sentinel represents the empty range.  Open
comparison operators fold whenever the ranges are disjoint or ordered;
``=`` additionally folds to ``true`` on matching singletons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.lang.values import INT, Value
from repro.lattice.core import AbstractValue, Lattice
from repro.lattice.pevalue import PEValue
from repro.facets.base import Facet


@dataclass(frozen=True)
class Interval:
    """A non-empty integer range; ``None`` bounds are infinite."""

    lo: int | None
    hi: int | None

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None \
                and self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def is_singleton(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


@dataclass(frozen=True)
class _Empty:
    """Bottom of the interval lattice."""

    def __str__(self) -> str:
        return "[]"


EMPTY = _Empty()
FULL = Interval(None, None)


def _lo_min(a: int | None, b: int | None) -> int | None:
    if a is None or b is None:
        return None
    return min(a, b)


def _hi_max(a: int | None, b: int | None) -> int | None:
    if a is None or b is None:
        return None
    return max(a, b)


def _lo_leq(a: int | None, b: int | None) -> bool:
    """a <= b where None = -inf."""
    if a is None:
        return True
    if b is None:
        return False
    return a <= b


def _hi_leq(a: int | None, b: int | None) -> bool:
    """a <= b where None = +inf."""
    if b is None:
        return True
    if a is None:
        return False
    return a <= b


class IntervalLattice(Lattice):
    """Intervals ordered by inclusion; infinite height, widened joins."""

    name = "interval"

    @property
    def bottom(self) -> AbstractValue:
        return EMPTY

    @property
    def top(self) -> AbstractValue:
        return FULL

    def leq(self, left: AbstractValue, right: AbstractValue) -> bool:
        if left == EMPTY:
            return True
        if right == EMPTY:
            return False
        assert isinstance(left, Interval) and isinstance(right, Interval)
        return _lo_leq(right.lo, left.lo) and _hi_leq(left.hi, right.hi)

    def join(self, left: AbstractValue, right: AbstractValue) \
            -> AbstractValue:
        if left == EMPTY:
            return right
        if right == EMPTY:
            return left
        assert isinstance(left, Interval) and isinstance(right, Interval)
        return Interval(_lo_min(left.lo, right.lo),
                        _hi_max(left.hi, right.hi))

    def meet(self, left: AbstractValue, right: AbstractValue) \
            -> AbstractValue:
        if left == EMPTY or right == EMPTY:
            return EMPTY
        assert isinstance(left, Interval) and isinstance(right, Interval)
        lo = left.lo if _lo_leq(right.lo, left.lo) else right.lo
        hi = left.hi if _hi_leq(left.hi, right.hi) else right.hi
        if lo is not None and hi is not None and lo > hi:
            return EMPTY
        return Interval(lo, hi)

    def height(self) -> int:
        raise NotImplementedError(
            "the interval lattice has infinite height; use widening")

    def is_enumerable(self) -> bool:
        return False

    def contains(self, element: AbstractValue) -> bool:
        return element == EMPTY or isinstance(element, Interval)

    def widen(self, previous: AbstractValue, new: AbstractValue) \
            -> AbstractValue:
        """Standard interval widening: unstable bounds go to infinity."""
        if previous == EMPTY:
            return new
        if new == EMPTY:
            return previous
        assert isinstance(previous, Interval) and isinstance(new, Interval)
        lo = previous.lo if _lo_leq(previous.lo, new.lo) else None
        hi = previous.hi if _hi_leq(new.hi, previous.hi) else None
        return Interval(lo, hi)

    def sample_elements(self) -> Iterable[AbstractValue]:
        return [EMPTY, Interval(0, 0), Interval(1, 1), Interval(-2, -1),
                Interval(0, 5), Interval(None, 0), Interval(1, None),
                FULL]


def _add(a: int | None, b: int | None) -> int | None:
    return None if a is None or b is None else a + b


#: Product bounds past this bit length widen to ±∞ (``None``).  Under
#: repeated squaring (``(* x x)`` in a specialized loop) the bound's
#: *bit length* doubles on every multiplication, so after a few dozen
#: PE steps a single ``x * y`` outgrows any time budget — and the step
#: meter can only interrupt *between* facet operations, not inside
#: one.  Widening is always sound for intervals; 512 bits is far above
#: anything a workload computes deliberately.
_WIDEN_BITS = 512


def _widen_huge(bound: int) -> int | None:
    return None if bound.bit_length() > _WIDEN_BITS else bound


class IntervalFacet(Facet):
    """Range information for the ``int`` algebra."""

    name = "interval"
    carrier = INT

    def __init__(self) -> None:
        super().__init__()
        self.domain = IntervalLattice()

        def products(a: Interval, b: Interval) -> AbstractValue:
            corners = []
            for x in (a.lo, a.hi):
                for y in (b.lo, b.hi):
                    if x is None or y is None:
                        return FULL
                    corners.append(x * y)
            return Interval(_widen_huge(min(corners)),
                            _widen_huge(max(corners)))

        def add(a: Interval, b: Interval) -> AbstractValue:
            return Interval(_add(a.lo, b.lo), _add(a.hi, b.hi))

        def sub(a: Interval, b: Interval) -> AbstractValue:
            lo = None if a.lo is None or b.hi is None else a.lo - b.hi
            hi = None if a.hi is None or b.lo is None else a.hi - b.lo
            return Interval(lo, hi)

        def neg(a: Interval) -> AbstractValue:
            lo = None if a.hi is None else -a.hi
            hi = None if a.lo is None else -a.lo
            return Interval(lo, hi)

        def abs_(a: Interval) -> AbstractValue:
            if a.lo is not None and a.lo >= 0:
                return a
            if a.hi is not None and a.hi <= 0:
                return neg(a)
            hi = None
            if a.lo is not None and a.hi is not None:
                hi = max(-a.lo, a.hi)
            return Interval(0, hi)

        def min_(a: Interval, b: Interval) -> AbstractValue:
            lo = _lo_min(a.lo, b.lo)
            hi = a.hi if _hi_leq(a.hi, b.hi) else b.hi
            return Interval(lo, hi)

        def max_(a: Interval, b: Interval) -> AbstractValue:
            lo = a.lo if _lo_leq(b.lo, a.lo) else b.lo
            hi = _hi_max(a.hi, b.hi)
            return Interval(lo, hi)

        def div(a: Interval, b: Interval) -> AbstractValue:
            # Sound but deliberately simple: bounded truncating division
            # stays within the dividend's magnitude.
            if a.lo is None or a.hi is None:
                return FULL
            magnitude = max(abs(a.lo), abs(a.hi))
            return Interval(-magnitude, magnitude)

        def mod(a: Interval, b: Interval) -> AbstractValue:
            # |a mod b| < |b| and the result keeps the dividend's sign.
            if b.lo is None or b.hi is None:
                return FULL
            bound = max(abs(b.lo), abs(b.hi))
            if bound == 0:
                # The divisor is exactly 0: every concrete application
                # errors, so the abstract result is the empty range.
                return EMPTY
            lo = 0 if (a.lo is not None and a.lo >= 0) else -(bound - 1)
            hi = 0 if (a.hi is not None and a.hi <= 0) else bound - 1
            return Interval(lo, hi)

        self.closed_ops = {
            "+": add, "-": sub, "*": products, "neg": neg, "abs": abs_,
            "min": min_, "max": max_, "div": div, "mod": mod,
        }

        def lt(a: Interval, b: Interval) -> PEValue:
            if a.hi is not None and b.lo is not None and a.hi < b.lo:
                return PEValue.const(True)
            if a.lo is not None and b.hi is not None and a.lo >= b.hi:
                return PEValue.const(False)
            return PEValue.top()

        def le(a: Interval, b: Interval) -> PEValue:
            if a.hi is not None and b.lo is not None and a.hi <= b.lo:
                return PEValue.const(True)
            if a.lo is not None and b.hi is not None and a.lo > b.hi:
                return PEValue.const(False)
            return PEValue.top()

        def eq(a: Interval, b: Interval) -> PEValue:
            if a.is_singleton and b.is_singleton:
                return PEValue.const(a.lo == b.lo)
            if self.domain.meet(a, b) == EMPTY:
                return PEValue.const(False)
            return PEValue.top()

        def negated(op):
            def run(a: Interval, b: Interval) -> PEValue:
                result = op(a, b)
                if result.is_const:
                    return PEValue.const(not result.constant())
                return result
            return run

        self.open_ops = {
            "<": lt,
            "<=": le,
            ">": lambda a, b: lt(b, a),
            ">=": lambda a, b: le(b, a),
            "=": eq,
            "!=": negated(eq),
        }

        # Branch refinements (constraint-propagation extension): the
        # classic interval narrowing meets.
        from repro.facets.base import flipped_refiner, negated_refiner

        def refine_lt(assume: bool, a, b):
            if a == EMPTY or b == EMPTY:
                return EMPTY, EMPTY
            if assume:
                new_a = self.domain.meet(a, Interval(
                    None, None if b.hi is None else b.hi - 1))
                new_b = self.domain.meet(b, Interval(
                    None if a.lo is None else a.lo + 1, None))
            else:
                new_a = self.domain.meet(a, Interval(b.lo, None))
                new_b = self.domain.meet(b, Interval(None, a.hi))
            return new_a, new_b

        def refine_le(assume: bool, a, b):
            if a == EMPTY or b == EMPTY:
                return EMPTY, EMPTY
            if assume:
                new_a = self.domain.meet(a, Interval(None, b.hi))
                new_b = self.domain.meet(b, Interval(a.lo, None))
            else:
                new_a = self.domain.meet(a, Interval(
                    None if b.lo is None else b.lo + 1, None))
                new_b = self.domain.meet(b, Interval(
                    None, None if a.hi is None else a.hi - 1))
            return new_a, new_b

        def refine_eq(assume: bool, a, b):
            if assume:
                meet = self.domain.meet(a, b)
                return meet, meet
            return a, b

        self.refine_ops = {
            "<": refine_lt,
            "<=": refine_le,
            ">": flipped_refiner(refine_lt),
            ">=": flipped_refiner(refine_le),
            "=": refine_eq,
            "!=": negated_refiner(refine_eq),
        }

    def abstract(self, value: Value) -> AbstractValue:
        return Interval(value, value)

    def sample_abstract_values(self) -> list[AbstractValue]:
        return list(self.domain.sample_elements())
