"""Worker entry point: one specialization, inside a pool process.

:func:`execute_request` is the only function the scheduler ships to
``concurrent.futures`` workers, so it speaks plain dicts on both sides
(payloads pickle cheaply and identically under fork and spawn).  It
never raises for *program* reasons: parse errors, spec errors and fuel
blowups come back as a ``{"failed": True, ...}`` marker so the
scheduler can distinguish deterministic failures (degrade immediately,
retrying cannot help) from worker crashes (retry with backoff).

The ``_crashy`` hook is the fault-injection seam the service fault
tests drive: a request may carry a ``fault`` mapping that makes the
worker die (``crash``), stall past its deadline (``hang``) or fail
deterministically (``error``).  Crash faults count their firings in a
token file so "crash twice, then succeed" is expressible — exactly the
shape the retry/backoff tests need.
"""

from __future__ import annotations

import os
import time
from time import perf_counter
from typing import Any, Mapping

from repro.baselines.simple_pe import specialize_simple
from repro.engine.errors import classify
from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.offline.specializer import specialize_offline
from repro.online.config import PEConfig
from repro.online.specializer import specialize_online
from repro.service.specs import parse_specs, simple_division


class WorkerCrash(RuntimeError):
    """Raised instead of ``os._exit`` when a crash fault fires in
    inline (``workers=0``) mode, where killing the process would kill
    the caller too.  The scheduler treats it exactly like a pool
    worker's death."""


def default_suite() -> FacetSuite:
    """Every shipped facet — the suite the CLI and the service use."""
    return FacetSuite([SignFacet(), ParityFacet(), IntervalFacet(),
                       VectorSizeFacet()])


# -- fault injection -------------------------------------------------------

def _crash_count(token: str) -> int:
    try:
        with open(token, "r", encoding="utf-8") as handle:
            return int(handle.read().strip() or 0)
    except (OSError, ValueError):
        return 0


def _crashy(fault: Mapping[str, Any], inline: bool) -> None:
    """The fault-injection hook (test-only; see module docstring)."""
    kind = fault.get("kind")
    if kind == "crash":
        times = int(fault.get("times", 1))
        token = fault.get("token")
        if token is not None:
            fired = _crash_count(token)
            if fired >= times:
                return  # budget spent: behave normally.
            with open(token, "w", encoding="utf-8") as handle:
                handle.write(str(fired + 1))
        if inline:
            raise WorkerCrash("injected crash")
        os._exit(13)
    elif kind == "hang":
        time.sleep(float(fault.get("seconds", 60.0)))
    elif kind == "error":
        raise ValueError(fault.get("message", "injected failure"))
    else:
        raise ValueError(f"unknown fault kind {kind!r}")


# -- the worker body -------------------------------------------------------

def execute_request(payload: Mapping[str, Any]) -> dict:
    """Run one specialization request; return a plain result dict.

    Deterministic failures return ``{"failed": True, "error": ...}``;
    only infrastructure faults (a dying process) escape this function.
    """
    started = perf_counter()
    try:
        fault = payload.get("fault")
        if fault:
            _crashy(fault, inline=bool(payload.get("inline")))
        residual, goal_params, stats = _specialize(payload)
    except WorkerCrash:
        raise
    except Exception as error:  # noqa: BLE001 — the seam to the caller
        return {
            "failed": True,
            "error": f"{type(error).__name__}: {error}",
            "category": classify(error),
            "id": payload.get("id"),
            "engine": payload.get("engine", "online"),
            "seconds": perf_counter() - started,
        }
    return {
        "id": payload.get("id"),
        "engine": payload.get("engine", "online"),
        "residual": residual,
        "goal_params": list(goal_params),
        "stats": stats,
        "seconds": perf_counter() - started,
    }


def _specialize(payload: Mapping[str, Any]) \
        -> tuple[str, tuple[str, ...], dict]:
    program = parse_program(payload["source"])
    specs = payload.get("specs", ())
    config = _decode_config(payload.get("config") or {})
    engine = payload.get("engine", "online")
    if engine == "simple":
        division = simple_division(specs)
        result = specialize_simple(program, division, config)
    elif engine == "online":
        suite = default_suite()
        inputs = parse_specs(suite, specs)
        result = specialize_online(program, inputs, suite, config)
    elif engine == "offline":
        suite = default_suite()
        inputs = parse_specs(suite, specs)
        result = specialize_offline(program, inputs, suite,
                                    config=config)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return (pretty_program(result.program), result.goal_params,
            result.stats.as_dict())


def _decode_config(overrides: Mapping[str, Any]) -> PEConfig:
    from repro.service.results import _decode_config_value
    return PEConfig(**{name: _decode_config_value(name, value)
                       for name, value in overrides.items()})
