"""Worker entry point: one specialization, inside a pool process.

:func:`execute_request` is the only function the scheduler ships to
``concurrent.futures`` workers, so it speaks plain dicts on both sides
(payloads pickle cheaply and identically under fork and spawn).  It
never raises for *program* reasons: parse errors, spec errors and fuel
blowups come back as a ``{"failed": True, ...}`` marker so the
scheduler can distinguish deterministic failures (degrade immediately,
retrying cannot help) from worker crashes (retry with backoff).

The ``_crashy`` hook is the fault-injection seam the service fault
tests drive: a request may carry a ``fault`` mapping that makes the
worker die (``crash``), stall past its deadline (``hang``) or fail
deterministically (``error``).  Crash faults count their firings in a
token file so "crash twice, then succeed" is expressible — exactly the
shape the retry/backoff tests need.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from time import perf_counter
from typing import Any, Mapping

from repro.baselines.simple_pe import specialize_simple
from repro.engine.errors import classify
from repro.faults import active as _active_injector, fault_point, install
from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.values import is_value
from repro.offline.specializer import specialize_offline
from repro.online.config import PEConfig
from repro.online.specializer import specialize_online
from repro.service.specs import parse_specs, simple_division


class WorkerCrash(RuntimeError):
    """Raised instead of ``os._exit`` when a crash fault fires in
    inline (``workers=0``) mode, where killing the process would kill
    the caller too.  The scheduler treats it exactly like a pool
    worker's death."""


def default_suite() -> FacetSuite:
    """Every shipped facet — the suite the CLI and the service use."""
    return FacetSuite([SignFacet(), ParityFacet(), IntervalFacet(),
                       VectorSizeFacet()])


# -- per-process amortization tiers ----------------------------------------
#
# Worker processes are long-lived (one pool outlasts many requests), so
# the per-program artifacts below amortize across requests without any
# cross-process coordination.  Each request reports what it used in an
# ``outcome["tiers"]`` mapping; the scheduler folds those into
# ``ServiceStats``.

#: Loaded genext modules, ``(store_key, pattern_fp)`` -> module, LRU.
_GENEXT_CACHE_CAP = 32
_genext_cache: OrderedDict = OrderedDict()

#: Offline facet analyses, ``(source, abstract pattern)`` ->
#: ``(suite, analysis)``, LRU.  The suite is cached *with* the
#: analysis so the facet-operation memos it accumulated stay warm.
_ANALYSIS_MEMO_CAP = 128
_analysis_memo: OrderedDict = OrderedDict()

#: Artifact-store handles by path (the store reopens itself after a
#: fork, so one handle per path is safe in pool workers).
_stores: dict = {}

#: The suite pair used only to *fingerprint* genext requests (pure
#: reads; built once per process).
_fp_suites = None


def _store_for(path: str):
    """Best effort: a store that cannot open is no store (the genext
    engine then runs emit-per-miss, which is still correct)."""
    store = _stores.get(path)
    if store is None and path not in _stores:
        from repro.store import ArtifactStore
        try:
            store = ArtifactStore(path)
        except Exception:  # noqa: BLE001 — store trouble != request failure
            store = None
        _stores[path] = store
    return store


# -- fault injection -------------------------------------------------------

def _crash_count(token: str) -> int:
    try:
        with open(token, "r", encoding="utf-8") as handle:
            return int(handle.read().strip() or 0)
    except (OSError, ValueError):
        return 0


def _crashy(fault: Mapping[str, Any], inline: bool) -> None:
    """The fault-injection hook (test-only; see module docstring)."""
    kind = fault.get("kind")
    if kind == "crash":
        times = int(fault.get("times", 1))
        token = fault.get("token")
        if token is not None:
            fired = _crash_count(token)
            if fired >= times:
                return  # budget spent: behave normally.
            with open(token, "w", encoding="utf-8") as handle:
                handle.write(str(fired + 1))
        if inline:
            raise WorkerCrash("injected crash")
        os._exit(13)
    elif kind == "hang":
        time.sleep(float(fault.get("seconds", 60.0)))
    elif kind == "error":
        raise ValueError(fault.get("message", "injected failure"))
    else:
        raise ValueError(f"unknown fault kind {kind!r}")


# -- the worker body -------------------------------------------------------

def execute_request(payload: Mapping[str, Any]) -> dict:
    """Run one specialization request; return a plain result dict.

    Deterministic failures return ``{"failed": True, "error": ...}``;
    only infrastructure faults (a dying process) escape this function.
    """
    started = perf_counter()
    inline = bool(payload.get("inline"))
    plan = payload.get("fault_plan")
    if plan is not None:
        # Install the scheduler's seeded FaultPlan in this process
        # (idempotent by plan digest — pool workers outlive requests).
        install(plan)
    injector = _active_injector()
    mark = len(injector.events) if injector is not None else 0
    try:
        fault = payload.get("fault")
        if fault:
            _crashy(fault, inline=inline)
        fault_point("worker.execute", key=payload.get("id"),
                    crash=(_inline_crash if inline else _pool_crash))
        residual, goal_params, stats, extra = _specialize(payload)
    except WorkerCrash:
        raise
    except Exception as error:  # noqa: BLE001 — the seam to the caller
        outcome = {
            "failed": True,
            "error": f"{type(error).__name__}: {error}",
            "category": classify(error),
            "id": payload.get("id"),
            "engine": payload.get("engine", "online"),
            "seconds": perf_counter() - started,
        }
        _attach_fault_events(outcome, injector, mark)
        return outcome
    outcome = {
        "id": payload.get("id"),
        "engine": payload.get("engine", "online"),
        "residual": residual,
        "goal_params": list(goal_params),
        "stats": stats,
        "seconds": perf_counter() - started,
    }
    outcome.update(extra)
    _attach_fault_events(outcome, injector, mark)
    return outcome


def _inline_crash() -> None:
    raise WorkerCrash("injected crash (fault plan)")


def _pool_crash() -> None:
    os._exit(13)


def _attach_fault_events(outcome: dict, injector, mark: int) -> None:
    """Ship the injections this request triggered back to the
    scheduler (worker processes hold their own injector; the scheduler
    folds the events into ``ServiceStats.faults_injected``)."""
    if injector is not None and len(injector.events) > mark:
        outcome["fault_events"] = injector.events[mark:]


def _specialize(payload: Mapping[str, Any]) \
        -> tuple[str, tuple[str, ...], dict, dict]:
    source = payload["source"]
    specs = list(payload.get("specs", ()))
    config = _decode_config(payload.get("config") or {})
    engine = payload.get("engine", "online")
    extra: dict[str, Any] = {}
    if engine == "simple":
        program = parse_program(source)
        division = simple_division(specs)
        result = specialize_simple(program, division, config)
    elif engine == "online":
        program = parse_program(source)
        suite = default_suite()
        inputs = parse_specs(suite, specs)
        result = specialize_online(program, inputs, suite, config)
    elif engine == "offline":
        tiers: dict[str, int] = {}
        suite, inputs, analysis = _offline_prepare(source, specs,
                                                   tiers)
        result = specialize_offline(analysis.program, inputs, suite,
                                    analysis=analysis, config=config)
        extra["tiers"] = tiers
    elif engine == "genext":
        return _specialize_genext(payload, source, specs)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    return (pretty_program(result.program), result.goal_params,
            result.stats.as_dict(), extra)


def _offline_prepare(source: str, specs: list[str],
                     tiers: dict) -> tuple:
    """The per-worker analysis memo of the ``offline`` engine.

    The facet analysis only depends on the program and the *abstract*
    input pattern, so it is keyed on exactly that — two requests whose
    literal inputs abstract identically (same sign/parity/interval
    image) share one analysis.  The suite is cached alongside so its
    facet-operation memos stay warm across requests.
    """
    from repro.facets.abstract.vector import AbstractSuite
    suite = default_suite()
    inputs = parse_specs(suite, specs)
    abstract_suite = AbstractSuite(suite)
    pattern = tuple(
        abstract_suite.abstract_of_online(
            suite.const_vector(v) if is_value(v) else v)
        for v in inputs)
    key = (source, pattern)
    entry = _analysis_memo.get(key)
    if entry is not None:
        _analysis_memo.move_to_end(key)
        tiers["analysis_memo_hits"] = 1
        suite, analysis = entry
        # Re-parse against the cached suite so the input vectors carry
        # that suite's (memo-warm) facet components.
        return suite, parse_specs(suite, specs), analysis
    tiers["analysis_memo_misses"] = 1
    from repro.offline.analysis import analyze
    program = parse_program(source)
    analysis = analyze(program, list(pattern), abstract_suite)
    _analysis_memo[key] = (suite, analysis)
    while len(_analysis_memo) > _ANALYSIS_MEMO_CAP:
        _analysis_memo.popitem(last=False)
    return suite, inputs, analysis


def _specialize_genext(payload: Mapping[str, Any], source: str,
                       specs: list[str]) \
        -> tuple[str, tuple[str, ...], dict, dict]:
    """The ``genext`` engine: serve from an emitted generating
    extension, amortized per ``(source, config)`` across three tiers —
    per-process module cache, persistent store row, fresh emission."""
    tiers: dict[str, int] = {}
    wire_config = dict(payload.get("config") or {})
    module = _genext_module(source, specs, wire_config,
                            payload.get("store_path"), tiers)
    extra: dict[str, Any] = {"tiers": tiers}
    if payload.get("backend") == "compiled":
        # The fused hot path: the residual AST goes straight into the
        # compiled backend — no pretty-print → re-parse round trip.
        inputs = parse_specs(module.runtime.online, specs)
        result, compiled = module.specialize_compiled(inputs)
        extra["compiled"] = compiled.artifact()
    else:
        result = module.specialize_specs(specs)
    return (pretty_program(result.program), result.goal_params,
            result.stats.as_dict(), extra)


def _genext_module(source: str, specs: list[str], wire_config: dict,
                   store_path: str | None, tiers: dict):
    """Resolve the emitted genext module for one request.

    Tier order: per-process LRU (``genext_hits``) → persistent store
    row (``genext_store_hits``; a row whose Python will not load is
    deleted and treated as a miss) → emit from scratch
    (``genext_emits``), write-behind merged into the store row
    (``genext_store_writes``).
    """
    global _fp_suites
    import hashlib
    from repro.genext import (
        emit_genext, facet_name_of, genext_store_key, load_genext)
    from repro.genext.emit import generalized_pattern
    if _fp_suites is None:
        from repro.facets.abstract.vector import AbstractSuite
        suite = default_suite()
        _fp_suites = (suite, AbstractSuite(suite),
                      tuple(facet_name_of(f) for f in suite.facets))
    fp_suite, fp_abstract, facet_names = _fp_suites
    _, _, pattern_fp = generalized_pattern(fp_suite, fp_abstract,
                                           specs)
    source_sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
    store_key = genext_store_key(source_sha, wire_config, facet_names)
    cache_key = (store_key, pattern_fp)
    module = _genext_cache.get(cache_key)
    if module is not None:
        _genext_cache.move_to_end(cache_key)
        tiers["genext_hits"] = 1
        return module
    store = _store_for(store_path) if store_path else None
    if store is not None:
        row = store.get(store_key)
        if row is not None:
            text = ((row.get("patterns") or {})
                    .get(pattern_fp) or {}).get("python")
            if isinstance(text, str):
                try:
                    module = load_genext(text)
                except Exception:  # noqa: BLE001 — bad row == miss
                    # Checksums cannot catch *semantic* damage (a row
                    # written by an incompatible build); drop it so
                    # the re-emit below replaces it.
                    store.delete(store_key)
                    module = None
                else:
                    tiers["genext_store_hits"] = 1
    if module is None:
        emitted = emit_genext(source, specs, config=wire_config)
        tiers["genext_emits"] = 1
        module = load_genext(emitted.python_source)
        if store is not None:
            from repro.genext import GENEXT_PROTOCOL
            row = store.get(store_key)
            patterns = dict((row or {}).get("patterns") or {})
            patterns[pattern_fp] = {"python": emitted.python_source}
            bundle = {"kind": "genext", "version": GENEXT_PROTOCOL,
                      "patterns": patterns}
            if store.put(store_key, bundle, kind="genext"):
                tiers["genext_store_writes"] = 1
    _genext_cache[cache_key] = module
    while len(_genext_cache) > _GENEXT_CACHE_CAP:
        _genext_cache.popitem(last=False)
    return module


def _decode_config(overrides: Mapping[str, Any]) -> PEConfig:
    from repro.service.results import _decode_config_value
    return PEConfig(**{name: _decode_config_value(name, value)
                       for name, value in overrides.items()})
