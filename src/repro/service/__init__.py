"""The batch specialization service.

The specializers under :mod:`repro.online`, :mod:`repro.offline` and
:mod:`repro.baselines` are blocking in-process engines; this package
is the serving layer the ROADMAP's production north star asks for:

* :class:`SpecRequest` / :class:`SpecResult`
  (:mod:`repro.service.results`) — plain-data request/response types
  shared by the Python API, the ``ppe batch`` manifest and the
  ``ppe serve`` JSONL protocol;
* :class:`SpecializationService` (:mod:`repro.service.scheduler`) —
  process-pool scheduling with per-request deadlines, crash retry with
  exponential backoff, and graceful degradation (callers get a
  ``degraded=True`` fallback residual, never an exception);
* :class:`ResidualCache` (:mod:`repro.service.cache`) — the bounded
  cross-request LRU above PR 1's in-suite caches; with a
  ``store_path`` the service mounts :class:`repro.store.ArtifactStore`
  below it as a persistent, restart-surviving second tier;
* :func:`execute_request` (:mod:`repro.service.worker`) — the worker
  entry point, also usable directly for sequential reference runs (the
  byte-identical determinism test does exactly that);
* :func:`serve` (:mod:`repro.service.serve`) — the JSONL loop;
* :class:`AsyncSubmitter` (:mod:`repro.service.submit`) — the
  non-blocking, priority-ordered submission seam the HTTP gateway
  (:mod:`repro.gateway`) rides;
* :class:`CircuitBreaker` (:mod:`repro.service.breaker`) and
  :class:`PoisonQuarantine` (:mod:`repro.service.quarantine`) — the
  hardening layer: per-dependency circuit breaking and a TTL'd
  penalty box for poison-pill request fingerprints, both surfaced
  through :meth:`SpecializationService.health` and the ``faults`` /
  ``breaker`` / ``quarantine`` / ``watchdog`` profile sections.
  Deterministic fault injection to exercise all of it lives in
  :mod:`repro.faults`.

Residual determinism is the invariant the whole layer rests on: the
same request yields the byte-identical residual whether it ran inline,
in any worker of any pool size, or came from the cache — pinned by
``tests/service/test_batch.py`` and continuously cross-checked against
the interpreter by the differential harness in ``tests/differential/``.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.cache import ResidualCache
from repro.service.quarantine import PoisonQuarantine
from repro.service.results import SpecRequest, SpecResult, load_manifest
from repro.service.scheduler import SpecializationService
from repro.service.serve import serve
from repro.service.submit import AsyncSubmitter
from repro.service.worker import execute_request

__all__ = [
    "AsyncSubmitter", "CircuitBreaker", "PoisonQuarantine",
    "ResidualCache", "SpecRequest", "SpecResult",
    "SpecializationService", "execute_request", "load_manifest",
    "serve",
]
