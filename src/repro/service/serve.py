"""``ppe serve`` — a long-running JSONL request/response loop.

One JSON object per input line, one JSON object per output line,
flushed immediately, so any process that can spawn a child and speak
line-delimited JSON can drive the specializer without paying Python
start-up per request.  Four input shapes:

* a request object (the ``ppe batch`` manifest entry format, inline
  ``source`` only) — answered with the
  :meth:`~repro.service.results.SpecResult.to_dict` of its result;
* ``{"op": "stats"}`` — answered with the service's
  :class:`~repro.observability.ServiceStats` snapshot;
* ``{"op": "health"}`` — answered with
  :meth:`~repro.service.scheduler.SpecializationService.health`
  (breaker states, the quarantine table, watchdog activity);
* ``{"op": "shutdown"}`` — acknowledged, then the loop exits (EOF
  does the same without the acknowledgement).

**The loop never dies on input.**  Malformed lines — broken JSON,
non-objects, unknown fields, *wrongly-typed* fields (``{"source":
42}``), anything at all — are answered with ``{"ok": false, "error":
...}`` and the loop keeps going: a serving loop that dies on one bad
request is not a serving loop.  A last-resort backstop catches even
unforeseen per-line failures the same way.  The one fatal condition is
the *consumer* going away — a ``BrokenPipeError`` on the output stream
ends the loop cleanly (there is nobody left to answer).

The loop carries its own fault seam (``serve.request``,
:mod:`repro.faults`): an injected request-handling error is answered
as a structured error line, exactly like bad input.
"""

from __future__ import annotations

import json
from typing import IO

from repro.faults import fault_point
from repro.service.results import SpecRequest
from repro.service.scheduler import SpecializationService


def _emit(stream_out: IO[str], payload: dict) -> None:
    stream_out.write(json.dumps(payload, sort_keys=True) + "\n")
    stream_out.flush()


def serve(service: SpecializationService, stream_in: IO[str],
          stream_out: IO[str],
          default_engine: str = "online") -> int:
    """Pump the JSONL loop until shutdown, EOF, or the consumer
    closing the output stream.  Requests that name no engine get
    ``default_engine`` (the CLI's ``--engine`` flag).  Returns 0."""
    try:
        _pump(service, stream_in, stream_out, default_engine)
    except BrokenPipeError:
        pass
    return 0


def _pump(service: SpecializationService, stream_in: IO[str],
          stream_out: IO[str], default_engine: str) -> None:
    for line in stream_in:
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            _emit(stream_out, {"ok": False,
                               "error": f"bad JSON: {error}"})
            continue
        if not isinstance(data, dict):
            _emit(stream_out, {"ok": False,
                               "error": "expected a JSON object"})
            continue
        try:
            _handle(service, stream_out, data, default_engine)
        except StopIteration:
            break
        except BrokenPipeError:
            raise
        except Exception as error:  # noqa: BLE001 — the loop survives
            # The backstop: nothing a caller writes on stdin may kill
            # the loop.  Anything _handle failed to answer itself is
            # answered here as a structured error.
            _emit(stream_out, {
                "ok": False,
                "error": f"internal error: "
                         f"{type(error).__name__}: {error}",
                "id": data.get("id") if isinstance(data, dict)
                else None})


def _handle(service: SpecializationService, stream_out: IO[str],
            data: dict, default_engine: str) -> None:
    """One input object; raises StopIteration on shutdown."""
    op = data.get("op")
    if op == "shutdown":
        _emit(stream_out, {"ok": True, "op": "shutdown"})
        raise StopIteration
    if op == "stats":
        _emit(stream_out, {"ok": True, "op": "stats",
                           "stats": service.stats_dict()})
        return
    if op == "health":
        _emit(stream_out, {"ok": True, "op": "health",
                           "health": service.health()})
        return
    if op is not None:
        _emit(stream_out, {"ok": False,
                           "error": f"unknown op {op!r}"})
        return
    try:
        fault_point("serve.request", key=data.get("id")
                    if isinstance(data.get("id"), str) else None)
        request = SpecRequest.from_dict(
            data, default_engine=default_engine)
    except (ValueError, OSError, TypeError) as error:
        _emit(stream_out, {"ok": False, "error": str(error),
                           "id": data.get("id")})
        return
    result = service.run_one(request)
    _emit(stream_out, result.to_dict())
