"""``ppe serve`` — a long-running JSONL request/response loop.

One JSON object per input line, one JSON object per output line,
flushed immediately, so any process that can spawn a child and speak
line-delimited JSON can drive the specializer without paying Python
start-up per request.  Three input shapes:

* a request object (the ``ppe batch`` manifest entry format, inline
  ``source`` only) — answered with the
  :meth:`~repro.service.results.SpecResult.to_dict` of its result;
* ``{"op": "stats"}`` — answered with the service's
  :class:`~repro.observability.ServiceStats` snapshot;
* ``{"op": "shutdown"}`` — acknowledged, then the loop exits (EOF
  does the same without the acknowledgement).

Malformed lines are answered with ``{"ok": false, "error": ...}`` and
the loop keeps going: a serving loop that dies on one bad request is
not a serving loop.  The one fatal condition is the *consumer* going
away — a ``BrokenPipeError`` on the output stream ends the loop
cleanly (there is nobody left to answer).
"""

from __future__ import annotations

import json
from typing import IO

from repro.service.results import SpecRequest
from repro.service.scheduler import SpecializationService


def _emit(stream_out: IO[str], payload: dict) -> None:
    stream_out.write(json.dumps(payload, sort_keys=True) + "\n")
    stream_out.flush()


def serve(service: SpecializationService, stream_in: IO[str],
          stream_out: IO[str],
          default_engine: str = "online") -> int:
    """Pump the JSONL loop until shutdown, EOF, or the consumer
    closing the output stream.  Requests that name no engine get
    ``default_engine`` (the CLI's ``--engine`` flag).  Returns 0."""
    try:
        _pump(service, stream_in, stream_out, default_engine)
    except BrokenPipeError:
        pass
    return 0


def _pump(service: SpecializationService, stream_in: IO[str],
          stream_out: IO[str], default_engine: str) -> None:
    for line in stream_in:
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            _emit(stream_out, {"ok": False,
                               "error": f"bad JSON: {error}"})
            continue
        if not isinstance(data, dict):
            _emit(stream_out, {"ok": False,
                               "error": "expected a JSON object"})
            continue
        op = data.get("op")
        if op == "shutdown":
            _emit(stream_out, {"ok": True, "op": "shutdown"})
            break
        if op == "stats":
            _emit(stream_out, {"ok": True, "op": "stats",
                               "stats": service.stats.as_dict()})
            continue
        if op is not None:
            _emit(stream_out, {"ok": False,
                               "error": f"unknown op {op!r}"})
            continue
        try:
            request = SpecRequest.from_dict(
                data, default_engine=default_engine)
        except (ValueError, OSError) as error:
            _emit(stream_out, {"ok": False, "error": str(error),
                               "id": data.get("id")})
            continue
        result = service.run_one(request)
        _emit(stream_out, result.to_dict())
