"""``ppe serve`` — a long-running JSONL request/response loop.

One JSON object per input line, one JSON object per output line,
flushed immediately, so any process that can spawn a child and speak
line-delimited JSON can drive the specializer without paying Python
start-up per request.  Four input shapes:

* a request object (the ``ppe batch`` manifest entry format, inline
  ``source`` only) — answered with the
  :meth:`~repro.service.results.SpecResult.to_dict` of its result;
* ``{"op": "stats"}`` — answered with the service's
  :class:`~repro.observability.ServiceStats` snapshot;
* ``{"op": "health"}`` — answered with
  :meth:`~repro.service.scheduler.SpecializationService.health`
  (breaker states, the quarantine table, watchdog activity);
* ``{"op": "shutdown"}`` — acknowledged, then the loop exits (EOF
  does the same without the acknowledgement).

Parsing, validation and response shaping live in
:mod:`repro.gateway.core` — the exact same code the HTTP gateway
runs — so the two front doors cannot drift apart; this module owns
only the line framing.  The JSONL byte format is pinned by
``tests/gateway/test_serve_parity.py``.

**The loop never dies on input.**  Malformed lines — broken JSON,
non-objects, unknown fields, *wrongly-typed* fields (``{"source":
42}``), anything at all — are answered with ``{"ok": false, "error":
...}`` and the loop keeps going: a serving loop that dies on one bad
request is not a serving loop.  A last-resort backstop catches even
unforeseen per-line failures the same way.  The one fatal condition is
the *consumer* going away — a ``BrokenPipeError`` on the output stream
ends the loop cleanly (there is nobody left to answer).

**Every response line is flushed before the next line is read** —
ordinary answers, op answers (``health``/``stats``) and error lines
alike.  A piped consumer that writes one request and waits for its
answer must never deadlock on a reply stuck in this process's stdio
buffer; ``tests/gateway/test_serve_parity.py`` drives a real pipe to
pin it.

The loop carries its own fault seam (``serve.request``,
:mod:`repro.faults`): an injected request-handling error is answered
as a structured error line, exactly like bad input.
"""

from __future__ import annotations

from typing import IO

from repro.gateway.core import (
    decode_json_object, encode_response, handle_op,
    handle_request_data, internal_error_payload)
from repro.service.scheduler import SpecializationService


def _emit(stream_out: IO[str], payload: dict) -> None:
    """One response line, flushed immediately (the no-deadlock
    contract for piped consumers)."""
    stream_out.write(encode_response(payload) + "\n")
    stream_out.flush()


def serve(service: SpecializationService, stream_in: IO[str],
          stream_out: IO[str],
          default_engine: str = "online") -> int:
    """Pump the JSONL loop until shutdown, EOF, or the consumer
    closing the output stream.  Requests that name no engine get
    ``default_engine`` (the CLI's ``--engine`` flag).  Returns 0."""
    try:
        _pump(service, stream_in, stream_out, default_engine)
    except BrokenPipeError:
        pass
    return 0


def _pump(service: SpecializationService, stream_in: IO[str],
          stream_out: IO[str], default_engine: str) -> None:
    for line in stream_in:
        line = line.strip()
        if not line:
            continue
        data, error = decode_json_object(line)
        if error is not None:
            _emit(stream_out, error)
            continue
        try:
            if _handle(service, stream_out, data, default_engine):
                break
        except BrokenPipeError:
            raise
        except Exception as error:  # noqa: BLE001 — the loop survives
            # The backstop: nothing a caller writes on stdin may kill
            # the loop.  Anything _handle failed to answer itself is
            # answered here as a structured error.
            _emit(stream_out, internal_error_payload(error, data))


def _handle(service: SpecializationService, stream_out: IO[str],
            data: dict, default_engine: str) -> bool:
    """One input object; returns ``True`` on shutdown."""
    payload, stop = handle_op(service, data)
    if payload is not None:
        _emit(stream_out, payload)
        return stop
    _emit(stream_out, handle_request_data(
        service, data, default_engine, seam="serve.request"))
    return False
