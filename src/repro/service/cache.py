"""Bounded cross-request LRU over finished residuals.

This cache sits *above* the per-run caches of PR 1 (the facet suite's
dispatch/interning/outcome memos live inside one specialization; this
one spans requests and services whole residual programs).  Keys are
:meth:`repro.service.results.SpecRequest.fingerprint` — source hash,
entry point, division and config — so two textually different requests
never collide and two identical ones always do.

Eviction is least-recently-used with a hard capacity; every lookup and
eviction reports into the owning service's
:class:`~repro.observability.ServiceStats`, which is how the hit rate
and eviction counts reach the ``--profile`` report.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.observability.service_stats import ServiceStats
from repro.service.results import SpecResult


class ResidualCache:
    """LRU mapping request fingerprints to finished results.

    ``capacity=0`` disables the cache (every lookup misses, nothing is
    stored) — the throughput benchmark uses that to measure raw
    specialization throughput.
    """

    def __init__(self, capacity: int = 256,
                 stats: ServiceStats | None = None) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = stats if stats is not None else ServiceStats()
        self._entries: "OrderedDict[str, SpecResult]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[SpecResult]:
        """Look up a fingerprint, refreshing its recency on a hit.

        ``capacity=0`` short-circuits before touching the stats: a
        disabled cache reports no traffic at all, so the benchmark
        configurations that turn it off do not pay (or pollute the
        hit-rate with) a counter bump per request."""
        if self.capacity == 0:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.stats.cache_misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.cache_hits += 1
        return entry

    def peek(self, key: str) -> Optional[SpecResult]:
        """Lookup without touching recency or counters."""
        return self._entries.get(key)

    def put(self, key: str, result: SpecResult) -> None:
        """Store a finished result.  Degraded results are refused —
        caching a timeout would pin the degradation long after the
        transient cause is gone."""
        if self.capacity == 0 or result.degraded:
            return
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.cache_evictions += 1

    def clear(self) -> None:
        self._entries.clear()
