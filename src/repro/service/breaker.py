"""Per-seam circuit breakers for the specialization service.

A :class:`CircuitBreaker` guards an optional, failure-prone dependency
(the persistent store tier, the compiled-backend lowering) so a
*persistently* failing path is bypassed for a cooldown instead of
paying its failure cost — lock-timeout retries, compile attempts that
always throw — on every request.  Classic three-state machine:

* **closed** — traffic flows; ``failure_threshold`` *consecutive*
  failures trip it open (a success resets the streak).
* **open** — calls are short-circuited (``allow()`` is ``False``)
  until ``cooldown_seconds`` have passed.
* **half-open** — after the cooldown, up to ``half_open_max`` probe
  calls are let through: a success closes the breaker, a failure
  re-opens it (and restarts the cooldown).

The breaker never raises and never blocks; it only answers
``allow()`` and records outcomes.  Callers keep their own fallback
behavior (skip the store tier, ship the residual without an artifact)
— exactly the degraded modes they already implement for individual
failures.  Time is injected (``clock``) so the state walk is unit
testable without sleeping.
"""

from __future__ import annotations

from time import monotonic
from typing import Callable

#: The three states, as they appear in health snapshots.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class CircuitBreaker:
    """One guarded seam; see module docstring."""

    def __init__(self, name: str, failure_threshold: int = 5,
                 cooldown_seconds: float = 30.0,
                 half_open_max: int = 1,
                 clock: Callable[[], float] = monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got "
                             f"{failure_threshold}")
        if cooldown_seconds < 0:
            raise ValueError(f"cooldown_seconds must be >= 0, got "
                             f"{cooldown_seconds}")
        if half_open_max < 1:
            raise ValueError(f"half_open_max must be >= 1, got "
                             f"{half_open_max}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.half_open_max = half_open_max
        self._clock = clock
        self._state = CLOSED
        self._streak = 0          # consecutive failures while closed
        self._opened_at = 0.0
        self._probes = 0          # probes granted while half-open
        # Lifetime accounting (the ``breaker`` health section).
        self.failures = 0
        self.successes = 0
        self.opens = 0
        self.short_circuits = 0

    # -- the gate ------------------------------------------------------
    def allow(self) -> bool:
        """May the caller use the guarded path right now?  Counts a
        short-circuit when the answer is no."""
        if self._state == OPEN:
            if self._clock() - self._opened_at >= self.cooldown_seconds:
                self._state = HALF_OPEN
                self._probes = 0
            else:
                self.short_circuits += 1
                return False
        if self._state == HALF_OPEN:
            if self._probes >= self.half_open_max:
                self.short_circuits += 1
                return False
            self._probes += 1
        return True

    # -- outcomes ------------------------------------------------------
    def record_success(self) -> None:
        self.successes += 1
        self._streak = 0
        if self._state == HALF_OPEN:
            self._state = CLOSED

    def record_failure(self) -> None:
        self.failures += 1
        if self._state == HALF_OPEN:
            self._trip()
            return
        self._streak += 1
        if self._state == CLOSED \
                and self._streak >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._streak = 0
        self.opens += 1

    # -- introspection -------------------------------------------------
    @property
    def state(self) -> str:
        """The current state, cooldown expiry applied lazily (an open
        breaker whose cooldown has passed reads ``half_open``)."""
        if self._state == OPEN and self._clock() - self._opened_at \
                >= self.cooldown_seconds:
            return HALF_OPEN
        return self._state

    def snapshot(self) -> dict:
        """JSON-ready health entry."""
        return {
            "state": self.state,
            "failures": self.failures,
            "successes": self.successes,
            "opens": self.opens,
            "short_circuits": self.short_circuits,
        }
