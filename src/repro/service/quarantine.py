"""Poison-pill quarantine: stop paying for requests that kill workers.

A *poison pill* is a request whose execution reliably crashes its
worker process.  The retry machinery treats every crash as potentially
transient — correct for genuine infrastructure flakiness, ruinous for
a deterministic pill: each attempt breaks the shared pool (a pool
restart, collateral retries for wave-mates, backoff sleeps), and an
attacker — or an unlucky client with a crashing input — can submit the
same pill forever.

:class:`PoisonQuarantine` remembers crash counts **per request
fingerprint** (the same semantic identity the result cache keys on).
Once a fingerprint accumulates ``threshold`` crashes it is
quarantined for ``ttl_seconds``: the scheduler degrades matching
requests immediately (reason ``"quarantined"``) without touching the
pool.  Entries expire by TTL — a pill is assumed fixable (a new
deploy, a transient kernel issue), so the penalty box is bounded — and
the table itself is capped (``max_entries``, oldest-expiring first)
so unbounded distinct pills cannot balloon memory.

Time is injected (``clock``) so expiry is unit-testable.
"""

from __future__ import annotations

from time import monotonic
from typing import Callable


class PoisonQuarantine:
    """Per-fingerprint crash tracking with a TTL'd penalty box."""

    def __init__(self, threshold: int = 3, ttl_seconds: float = 300.0,
                 max_entries: int = 1024,
                 clock: Callable[[], float] = monotonic) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if ttl_seconds < 0:
            raise ValueError(
                f"ttl_seconds must be >= 0, got {ttl_seconds}")
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1, got {max_entries}")
        self.threshold = threshold
        self.ttl_seconds = ttl_seconds
        self.max_entries = max_entries
        self._clock = clock
        #: fingerprint -> crash count (not yet quarantined).
        self._crashes: dict[str, int] = {}
        #: fingerprint -> quarantine expiry time.
        self._quarantined: dict[str, float] = {}
        # Lifetime accounting (the ``quarantine`` health section).
        self.pills = 0            # fingerprints ever quarantined
        self.short_circuits = 0   # requests degraded without a pool hit
        self.expiries = 0         # entries released by TTL

    # -- recording -----------------------------------------------------
    def record_crash(self, fingerprint: str) -> bool:
        """Count one worker crash against ``fingerprint``; ``True``
        when this crash tips it into quarantine."""
        if self.is_quarantined(fingerprint):
            return True
        count = self._crashes.get(fingerprint, 0) + 1
        if count >= self.threshold:
            self._crashes.pop(fingerprint, None)
            self._admit(fingerprint)
            return True
        self._crashes[fingerprint] = count
        return False

    def record_success(self, fingerprint: str) -> None:
        """A real completion clears the crash streak (a flaky-infra
        request that eventually succeeds is not a pill)."""
        self._crashes.pop(fingerprint, None)

    def _admit(self, fingerprint: str) -> None:
        self._expire()
        while len(self._quarantined) >= self.max_entries:
            # Drop the entry closest to release; the newly admitted
            # pill is hotter evidence than the oldest one.
            oldest = min(self._quarantined, key=self._quarantined.get)
            del self._quarantined[oldest]
        self._quarantined[fingerprint] = \
            self._clock() + self.ttl_seconds
        self.pills += 1

    # -- queries -------------------------------------------------------
    def is_quarantined(self, fingerprint: str) -> bool:
        expiry = self._quarantined.get(fingerprint)
        if expiry is None:
            return False
        if self._clock() >= expiry:
            del self._quarantined[fingerprint]
            self.expiries += 1
            return False
        return True

    def short_circuit(self, fingerprint: str) -> bool:
        """The scheduler's gate: like :meth:`is_quarantined`, but a
        positive answer is counted as one short-circuited request."""
        if self.is_quarantined(fingerprint):
            self.short_circuits += 1
            return True
        return False

    def _expire(self) -> None:
        now = self._clock()
        released = [fp for fp, expiry in self._quarantined.items()
                    if now >= expiry]
        for fingerprint in released:
            del self._quarantined[fingerprint]
            self.expiries += 1

    def __len__(self) -> int:
        self._expire()
        return len(self._quarantined)

    def snapshot(self) -> dict:
        """JSON-ready health entry."""
        return {
            "size": len(self),
            "threshold": self.threshold,
            "ttl_seconds": self.ttl_seconds,
            "pills": self.pills,
            "short_circuits": self.short_circuits,
            "expiries": self.expiries,
        }
