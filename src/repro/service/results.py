"""Requests and results of the batch specialization service.

A :class:`SpecRequest` is everything one specialization needs, as plain
data: program source, engine choice (``online`` / ``offline`` /
``genext`` / ``simple``), the input division as spec strings (see
:mod:`repro.service.specs`) and :class:`~repro.online.config.PEConfig`
overrides.  Plain data on purpose — requests cross process boundaries
(the worker pool) and wire formats (the ``batch`` manifest, the
``serve`` JSONL loop) unchanged.

A :class:`SpecResult` is the answer: the pretty-printed residual
program, the goal parameters it kept, the run's
:class:`~repro.observability.PEStats` snapshot, and the service
bookkeeping (``degraded``, ``cached``, ``attempts``, ``reason``).  The
service **never** raises to the caller; a request that cannot be
served honestly comes back ``degraded=True`` with the fallback
residual.

:func:`SpecRequest.fingerprint` is the cross-request cache key:
a SHA-256 over source hash, entry point, division and config — the
semantic identity of the request.  ``id``, ``deadline`` and the
fault-injection hook deliberately stay out of it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.online.config import PEConfig, UnfoldStrategy

ENGINES = ("online", "offline", "genext", "simple")

#: PEConfig fields a request may override, with their wire decoders.
_CONFIG_FIELDS = {f.name for f in fields(PEConfig)}


def _decode_config_value(name: str, value: Any) -> Any:
    if name == "unfold_strategy" and isinstance(value, str):
        try:
            return UnfoldStrategy(value)
        except ValueError:
            raise ValueError(
                f"unknown unfold_strategy {value!r}; expected one of "
                f"{[s.value for s in UnfoldStrategy]}") from None
    return value


def _encode_config_value(value: Any) -> Any:
    if isinstance(value, UnfoldStrategy):
        return value.value
    return value


@dataclass(frozen=True)
class SpecRequest:
    """One specialization request, as plain serializable data."""

    #: Program source text (the parsed program's first definition is
    #: the goal function, as everywhere else in the repo).
    source: str
    #: Input specs, one per goal parameter (``repro.service.specs``).
    specs: tuple[str, ...] = ()
    #: ``online`` | ``offline`` | ``genext`` | ``simple``.
    engine: str = "online"
    #: PEConfig overrides as a sorted, hashable item tuple.
    config: tuple[tuple[str, Any], ...] = ()
    #: Caller-chosen correlation id, echoed on the result.
    id: str | None = None
    #: Per-request wall-clock budget (seconds); the service default
    #: applies when ``None``.
    deadline: float | None = None
    #: Fault-injection hook for the service fault tests (see
    #: ``repro.service.worker._crashy``); never set in production.
    fault: tuple[tuple[str, Any], ...] | None = None

    # -- construction --------------------------------------------------
    @classmethod
    def create(cls, source: str, specs: Sequence[str] = (),
               engine: str = "online",
               config: Mapping[str, Any] | None = None,
               id: str | None = None, deadline: float | None = None,
               fault: Mapping[str, Any] | None = None) -> "SpecRequest":
        """Validating constructor: checks the engine name, the config
        keys **and every field's type**, normalizes mappings into
        hashable tuples.  Type strictness is load-bearing: the serve
        loop and the batch manifest feed caller-controlled JSON in
        here, and a wrongly-typed field that slips through surfaces
        later as an ``AttributeError`` deep inside the service — which
        must never happen (the loop answers a ``ValueError`` from here
        with a structured error line instead)."""
        if not isinstance(source, str):
            raise ValueError(
                f"source must be a string, got {type(source).__name__}")
        if not isinstance(engine, str) or engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}")
        if isinstance(specs, str) \
                or not isinstance(specs, Sequence) \
                or not all(isinstance(spec, str) for spec in specs):
            raise ValueError("specs must be a list of spec strings")
        if id is not None and not isinstance(id, str):
            raise ValueError(
                f"id must be a string, got {type(id).__name__}")
        if deadline is not None and (
                isinstance(deadline, bool)
                or not isinstance(deadline, (int, float))):
            raise ValueError(
                f"deadline must be a number, got "
                f"{type(deadline).__name__}")
        items: tuple[tuple[str, Any], ...] = ()
        if config is not None and not isinstance(config, Mapping):
            raise ValueError(
                f"config must be an object, got "
                f"{type(config).__name__}")
        if config:
            unknown = sorted(set(config) - _CONFIG_FIELDS)
            if unknown:
                raise ValueError(
                    f"unknown PEConfig field(s) {unknown}; known: "
                    f"{sorted(_CONFIG_FIELDS)}")
            items = tuple(sorted(
                (name, _decode_config_value(name, value))
                for name, value in config.items()))
        if fault is not None and not isinstance(fault, Mapping):
            raise ValueError(
                f"fault must be an object, got {type(fault).__name__}")
        fault_items = tuple(sorted(fault.items())) if fault else None
        return cls(source=source, specs=tuple(specs), engine=engine,
                   config=items, id=id, deadline=deadline,
                   fault=fault_items)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any],
                  base_dir: Path | None = None,
                  default_engine: str = "online") -> "SpecRequest":
        """Decode a manifest/JSONL entry.  ``source`` may be given
        inline or as a ``file`` path (resolved against ``base_dir``);
        entries that name no engine get ``default_engine`` (the CLI's
        ``--engine`` flag)."""
        if not isinstance(data, Mapping):
            raise ValueError(f"request must be an object, got {data!r}")
        known = {"source", "file", "specs", "engine", "config", "id",
                 "deadline", "fault"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown request field(s) {unknown}; "
                             f"known: {sorted(known)}")
        if ("source" in data) == ("file" in data):
            raise ValueError(
                "request needs exactly one of 'source' or 'file'")
        if "source" in data:
            source = data["source"]
        else:
            if not isinstance(data["file"], str):
                raise ValueError(
                    f"file must be a path string, got "
                    f"{type(data['file']).__name__}")
            path = Path(data["file"])
            if base_dir is not None and not path.is_absolute():
                path = base_dir / path
            source = path.read_text()
        specs = data.get("specs", ())
        if isinstance(specs, str):
            specs = specs.split()
        return cls.create(
            source=source, specs=specs,
            engine=data.get("engine", default_engine),
            config=data.get("config"), id=data.get("id"),
            deadline=data.get("deadline"), fault=data.get("fault"))

    # -- projections ---------------------------------------------------
    def pe_config(self) -> PEConfig:
        return PEConfig(**dict(self.config))

    def to_payload(self) -> dict:
        """The plain dict shipped to a worker process."""
        payload: dict[str, Any] = {
            "source": self.source, "specs": list(self.specs),
            "engine": self.engine,
            "config": {name: _encode_config_value(value)
                       for name, value in self.config},
        }
        if self.id is not None:
            payload["id"] = self.id
        if self.fault is not None:
            payload["fault"] = dict(self.fault)
        return payload

    def fingerprint(self) -> str:
        """Cross-request cache key: the request's semantic identity."""
        source_hash = hashlib.sha256(self.source.encode()).hexdigest()
        identity = {
            "source": source_hash,
            "specs": list(self.specs),
            "engine": self.engine,
            "config": [[name, _encode_config_value(value)]
                       for name, value in self.config],
        }
        blob = json.dumps(identity, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()


@dataclass(frozen=True)
class SpecResult:
    """The service's answer to one :class:`SpecRequest`."""

    #: Pretty-printed residual program.
    residual: str
    #: Goal parameters the residual kept (the dynamic division).
    goal_params: tuple[str, ...] = ()
    engine: str = "online"
    id: str | None = None
    #: ``True`` when the residual is a fallback (timeout, repeated
    #: crash, or a deterministic failure), not the requested
    #: specialization.  Degraded residuals still compute the source
    #: program's function — they just specialize nothing.
    degraded: bool = False
    #: Why the request degraded (``deadline``, ``worker-crash``, or the
    #: failure message); ``None`` on the happy path.
    reason: str | None = None
    #: Served from the cross-request residual cache.
    cached: bool = False
    #: Worker attempts consumed (0 for cache hits).
    attempts: int = 1
    #: ``PEStats.as_dict()`` of the run; ``{}`` when degraded before
    #: any engine ran.
    stats: Mapping[str, Any] = field(default_factory=dict)
    #: Worker-side wall-clock seconds.
    seconds: float = 0.0
    #: Compiled-backend artifact
    #: (:meth:`repro.backend.emit.CompiledProgram.artifact`) when the
    #: service runs with ``backend="compiled"``; ``None`` otherwise.
    #: Rides the cross-request cache with the result, so compilation
    #: cost is amortized across identical requests.
    compiled: Mapping[str, Any] | None = None

    def to_dict(self) -> dict:
        payload = {
            "id": self.id, "engine": self.engine,
            "residual": self.residual,
            "goal_params": list(self.goal_params),
            "degraded": self.degraded, "reason": self.reason,
            "cached": self.cached, "attempts": self.attempts,
            "stats": dict(self.stats),
            "seconds": round(self.seconds, 6),
        }
        # Only present with the compiled backend, so interp-backend
        # output stays byte-identical to the artifact-less format.
        if self.compiled is not None:
            payload["compiled"] = dict(self.compiled)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpecResult":
        """Rehydrate a :meth:`to_dict` document — the persistent
        artifact store's read path.  Strict about the one field the
        service cannot do without (``residual``), lenient about the
        bookkeeping, so a payload written by an older build still
        loads.  Raises :class:`ValueError` on anything else; the store
        tier treats that as a miss."""
        if not isinstance(data, Mapping):
            raise ValueError(f"result must be an object, got {data!r}")
        residual = data.get("residual")
        if not isinstance(residual, str):
            raise ValueError("result payload has no residual text")
        goal_params = data.get("goal_params", ())
        if not isinstance(goal_params, Sequence) \
                or isinstance(goal_params, str):
            raise ValueError("goal_params must be a list")
        compiled = data.get("compiled")
        if compiled is not None and not isinstance(compiled, Mapping):
            raise ValueError("compiled artifact must be an object")
        stats = data.get("stats") or {}
        if not isinstance(stats, Mapping):
            raise ValueError("stats must be an object")
        return cls(
            residual=residual,
            goal_params=tuple(str(p) for p in goal_params),
            engine=str(data.get("engine", "online")),
            id=data.get("id"),
            degraded=bool(data.get("degraded", False)),
            reason=data.get("reason"),
            cached=bool(data.get("cached", False)),
            attempts=int(data.get("attempts", 1)),
            stats=dict(stats),
            seconds=float(data.get("seconds", 0.0)),
            compiled=dict(compiled) if compiled is not None else None)

    def for_request(self, request: SpecRequest,
                    cached: bool = False) -> "SpecResult":
        """Rebind a (possibly cached) result to a concrete request."""
        return replace(self, id=request.id, cached=cached)


def load_manifest(text: str, base_dir: Path | None = None,
                  default_engine: str = "online") -> list[SpecRequest]:
    """Decode a ``ppe batch`` manifest: a JSON array of request
    objects, or an object with a ``requests`` array.  Entries that
    name no engine get ``default_engine``."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"manifest is not valid JSON: {error}") \
            from None
    if isinstance(data, Mapping):
        data = data.get("requests")
    if not isinstance(data, list):
        raise ValueError("manifest must be a JSON array of requests "
                         "or an object with a 'requests' array")
    return [SpecRequest.from_dict(entry, base_dir, default_engine)
            for entry in data]
