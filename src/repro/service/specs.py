"""The spec mini-language shared by the CLI and the batch service.

A *spec* describes one goal-function input as a short string:

* a literal — ``3``, ``-2.5``, ``true``, ``#(1 2 3)`` — a fully static
  input;
* ``dyn`` — a fully dynamic input;
* comma-separated ``facet=value`` pairs — dynamic with facet
  information, e.g. ``size=3``, ``sign=pos,parity=odd``,
  ``interval=1:9``.

:func:`parse_spec` builds the online/offline input (a concrete value or
a :class:`~repro.facets.vector.FacetVector`);
:func:`simple_division` projects the same specs onto the
facet-free world of :mod:`repro.baselines.simple_pe` (literals stay
static, everything else collapses to :data:`~repro.baselines.simple_pe.DYN`).

Errors raise :class:`SpecError` so both front ends — ``argparse`` in
the CLI, request validation in the service — can report them their own
way.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.simple_pe import DYN
from repro.facets.library.interval import Interval
from repro.facets.vector import FacetSuite, FacetVector
from repro.lang.values import INT, VECTOR, Value, Vector


class SpecError(ValueError):
    """A malformed input spec string."""


def parse_value(text: str) -> Value:
    """A literal: ``true``/``false``, an int, a float, or ``#(...)``."""
    if text == "true":
        return True
    if text == "false":
        return False
    if text.startswith("#(") and text.endswith(")"):
        items = text[2:-1].split()
        try:
            return Vector.of([float(i) for i in items])
        except ValueError as error:
            raise SpecError(f"bad vector literal {text!r}: {error}") \
                from None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise SpecError(f"bad literal {text!r}") from None


def parse_spec(suite: FacetSuite, text: str) -> FacetVector | Value:
    """``dyn``, a literal, or comma-separated ``facet=value`` pairs."""
    if text == "dyn":
        return suite.unknown(None)
    if "=" not in text:
        return parse_value(text)
    components: dict[str, object] = {}
    sort = None
    for pair in text.split(","):
        name, _, raw = pair.partition("=")
        if name == "size":
            try:
                components["size"] = int(raw)
            except ValueError:
                raise SpecError(
                    f"size must be an int in spec {text!r}") from None
            sort = VECTOR
        elif name in ("sign", "parity"):
            components[name] = raw
            sort = INT
        elif name == "interval":
            lo_text, _, hi_text = raw.partition(":")
            try:
                lo = None if lo_text in ("", "-inf") else int(lo_text)
                hi = None if hi_text in ("", "inf", "+inf") \
                    else int(hi_text)
            except ValueError:
                raise SpecError(
                    f"bad interval bounds in spec {text!r}") from None
            components["interval"] = Interval(lo, hi)
            sort = INT
        else:
            raise SpecError(f"unknown facet {name!r} in spec {text!r}")
    assert sort is not None
    return suite.input(sort, **components)  # type: ignore[arg-type]


def parse_specs(suite: FacetSuite,
                texts: Sequence[str]) -> list[FacetVector | Value]:
    return [parse_spec(suite, text) for text in texts]


def simple_division(texts: Sequence[str]) -> list[object]:
    """Project specs onto Figure 2's facet-free division: literals are
    static, ``dyn`` and facet specs (whose information the simple PE
    cannot represent) are dynamic."""
    division: list[object] = []
    for text in texts:
        if text == "dyn" or "=" in text:
            division.append(DYN)
        else:
            division.append(parse_value(text))
    return division
