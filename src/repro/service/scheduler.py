"""The batch specialization scheduler.

:class:`SpecializationService` turns many
:class:`~repro.service.results.SpecRequest` into
:class:`~repro.service.results.SpecResult` under a strict contract:
**the caller never sees an exception**.  Whatever happens — a worker
process dies, a deadline expires, the program does not even parse —
every request gets a result; the ones the service could not honestly
specialize come back ``degraded=True`` carrying the trivially-residual
fallback program.

Mechanics, in order:

1. **Cache** — each request's fingerprint is looked up in the bounded
   cross-request LRU (:class:`~repro.service.cache.ResidualCache`);
   hits skip the pool entirely.
2. **Quarantine** — fingerprints that repeatedly killed workers (the
   *poison pills*; :class:`~repro.service.quarantine.PoisonQuarantine`)
   degrade immediately with reason ``"quarantined"`` for a TTL,
   instead of burning pool restarts on every resubmission.
3. **Pool** — misses are fanned out over a
   :class:`concurrent.futures.ProcessPoolExecutor` in waves.  Futures
   are reaped as they complete (not in submission order); each is
   bounded by the request's deadline, or by the service-wide
   ``watchdog_timeout`` when it has none.
4. **Watchdog** — a future still running past its bound is declared
   hung: its request degrades (reason ``"deadline"`` on a request
   deadline, ``"watchdog"`` on the backstop), and once the rest of the
   wave is reaped the stuck pool members are *terminated* — not
   abandoned to grind forever — and the pool rebuilt
   (``ServiceStats.watchdog_recycles``).
5. **Retry** — a dying worker breaks its pool; affected requests are
   resubmitted to a fresh pool with exponential backoff
   (``backoff_base * 2**(attempt-1)``, capped), up to ``max_attempts``.
   Crashes are charged to the request's fingerprint; past
   ``quarantine_threshold`` of them the fingerprint is quarantined.
6. **Degrade** — timeouts, exhausted retries, quarantine hits and
   deterministic failures fall back to the facet-free
   trivially-residual program from :mod:`repro.baselines.simple_pe`
   (or, if even that fails, the unspecialized source), flagged
   ``degraded=True``.

A request with a deadline additionally gets a *cooperative* engine
budget: ``deadline_budget_fraction`` (default 0.8) of the deadline is
mapped onto the engine's soft wall-clock budget
(``PEConfig.max_wall_seconds``) unless the request set one itself, so
a long-running specialization widens itself down inside the engine and
returns a real — if less specialized — residual *before* the hard
future-timeout kill fires.  Such in-engine degradations count as
``completed`` (and ``ServiceStats.engine_degradations``), not
``degraded``, and are kept out of the cross-request cache: the
injected wall budget is not part of the fingerprint, and what it
produced is timing-dependent.

Mind the fraction on adversarial inputs: post-processing (simplify,
pretty-printing) runs *outside* the budget-governed region and scales
with the residual the budget permitted, so a fraction close to 1 can
still blow the deadline in the un-metered tail.  Keep it conservative,
or disable ``simplify``/``tidy`` in the request config.

``workers=0`` selects *inline* mode: requests run in-process with no
pool and no hard deadline kills (the cooperative engine budget still
applies), same cache/retry/quarantine/degrade accounting — the mode
the determinism tests, the chaos soak and the ``serve`` loop's tests
use.

With ``backend="compiled"`` every successful residual is additionally
lowered through :mod:`repro.backend` and its compiled artifact stored
on the result (and therefore in the cross-request cache, amortizing
compilation across identical requests); compilation is best-effort and
never fails a request.

With ``store_path`` set, a persistent artifact store
(:class:`repro.store.ArtifactStore`, SQLite/WAL) mounts as a **second
cache tier below the in-memory LRU**: lookups read through (memory
first, then disk, promoting disk hits into memory), successful results
are written behind to disk, and the store file is shared across worker
processes and service restarts — the warm-start story.  Store hits are
``cached=True`` results like LRU hits; store problems (lock contention,
corrupt rows, a damaged file) degrade to misses and are counted in
``ServiceStats`` (``store_*``), never raised.  The same exclusions
apply as for the LRU: degraded and in-engine-degraded results are
never persisted.

**Circuit breakers** (:class:`~repro.service.breaker.CircuitBreaker`)
guard the two optional dependencies — the store tier and the
compiled-backend lowering.  ``breaker_threshold`` consecutive failures
open a breaker; while open, the path is skipped outright (no lock
retries, no doomed compile attempts) for ``breaker_cooldown`` seconds,
then probed half-open.  Both breakers' states are in
:meth:`health` and the ``breaker`` profile section.

**Fault injection** (:mod:`repro.faults`): constructing the service
with a ``fault_plan`` — or exporting ``REPRO_FAULT_PLAN`` — installs a
deterministic seeded :class:`~repro.faults.FaultPlan` process-globally
and ships it inside every worker payload, so the named injection
points across the store, worker, genext, backend, scheduler and serve
seams all fire from one plan.  Injections realized are folded into
``ServiceStats.faults_injected`` (the ``faults`` profile section).

Every step reports into :class:`~repro.observability.ServiceStats`;
backend work into :class:`~repro.observability.BackendStats`.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    FIRST_COMPLETED, Future, ProcessPoolExecutor, wait)
from dataclasses import dataclass
from pathlib import Path
from time import monotonic
from typing import Callable, Mapping, Sequence

from repro.baselines.simple_pe import DYN, specialize_simple
from repro.faults import FaultPlan, active as _active_injector, \
    fault_point, install as _install_plan
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.observability.backend_stats import BackendStats
from repro.observability.service_stats import ServiceStats
from repro.online.config import PEConfig, UnfoldStrategy
from repro.service.breaker import CircuitBreaker
from repro.service.cache import ResidualCache
from repro.service.quarantine import PoisonQuarantine
from repro.service.results import SpecRequest, SpecResult
from repro.service.worker import execute_request

#: Config of the degraded fallback: never unfold, never search — the
#: residual is essentially a tidied copy of the source program.
_FALLBACK_CONFIG = PEConfig(unfold_strategy=UnfoldStrategy.NEVER,
                            simplify=False, tidy=True, fuel=200_000)


@dataclass
class _Job:
    """One cache-missing request moving through the wave loop."""

    index: int
    request: SpecRequest
    key: str
    attempts: int = 0
    backoff: float = 0.0


class SpecializationService:
    """Batch specialization over a worker pool; see module docstring."""

    def __init__(self, workers: int = 1, cache_capacity: int = 256,
                 max_attempts: int = 3, backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 default_deadline: float | None = None,
                 deadline_budget_fraction: float | None = 0.8,
                 default_config: dict | None = None,
                 backend: str = "interp",
                 store_path: str | Path | None = None,
                 store_max_bytes: int | None = None,
                 fault_plan: FaultPlan | Mapping | None = None,
                 watchdog_timeout: float | None = None,
                 quarantine_threshold: int = 3,
                 quarantine_ttl: float = 300.0,
                 breaker_threshold: int = 5,
                 breaker_cooldown: float = 30.0,
                 clock: Callable[[], float] = monotonic,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if backend not in ("interp", "compiled"):
            raise ValueError(
                f"unknown backend {backend!r}; expected 'interp' or "
                f"'compiled'")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}")
        if deadline_budget_fraction is not None \
                and not 0.0 < deadline_budget_fraction <= 1.0:
            raise ValueError(
                f"deadline_budget_fraction must be in (0, 1], got "
                f"{deadline_budget_fraction}")
        if watchdog_timeout is not None and watchdog_timeout <= 0:
            raise ValueError(
                f"watchdog_timeout must be positive or None, got "
                f"{watchdog_timeout}")
        self.workers = workers
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.default_deadline = default_deadline
        self.deadline_budget_fraction = deadline_budget_fraction
        #: Service-wide PEConfig defaults (e.g. budget caps from the
        #: CLI); a request's own config always wins.
        self.default_config = dict(default_config or {})
        #: ``interp`` (residuals as text only) or ``compiled``
        #: (successful residuals additionally carry the compiled
        #: artifact of :mod:`repro.backend`, cached alongside them).
        self.backend = backend
        #: Hard bound for futures whose request carries no deadline;
        #: ``None`` (the default) preserves wait-forever semantics.
        #: Deadline-bearing futures are always watchdogged: past their
        #: deadline the stuck member is terminated, not abandoned.
        self.watchdog_timeout = watchdog_timeout
        self.stats = ServiceStats()
        self.backend_stats = BackendStats()
        self.cache = ResidualCache(cache_capacity, self.stats)
        #: Per-seam circuit breakers over the optional dependencies.
        self.breakers = {
            "store": CircuitBreaker(
                "store", failure_threshold=breaker_threshold,
                cooldown_seconds=breaker_cooldown, clock=clock),
            "compile": CircuitBreaker(
                "compile", failure_threshold=breaker_threshold,
                cooldown_seconds=breaker_cooldown, clock=clock),
        }
        #: The poison-pill penalty box (see module docstring).
        self.quarantine = PoisonQuarantine(
            threshold=quarantine_threshold, ttl_seconds=quarantine_ttl,
            clock=clock)
        #: The deterministic fault plan, if any: installed process-
        #: globally here and shipped inside every worker payload.
        #: ``None`` falls back to ``REPRO_FAULT_PLAN``.  One plan per
        #: process — constructing a second service with a different
        #: plan re-points the global injector.
        if fault_plan is None:
            fault_plan = FaultPlan.from_env()
        elif not isinstance(fault_plan, FaultPlan):
            fault_plan = FaultPlan.from_dict(fault_plan)
        self.fault_plan = fault_plan
        if fault_plan is not None:
            _install_plan(fault_plan)
        #: Injections reported back by pool workers (``seam:kind``
        #: counts; inline mode shares the in-process injector instead).
        self._worker_faults: dict[str, int] = {}
        #: The persistent tier (``None`` when no ``store_path``); its
        #: counters land in the same ServiceStats as the LRU's.
        self.store = None
        if store_path is not None:
            from repro.store import ArtifactStore
            self.store = ArtifactStore(store_path,
                                       max_bytes=store_max_bytes,
                                       stats=self.stats)
        self._sleep = sleep
        self._pool: ProcessPoolExecutor | None = None
        #: The per-batch progress callback (see :meth:`run_batch`);
        #: ``None`` outside a batch and whenever the caller gave none.
        self._progress: Callable[[str, SpecRequest], None] | None = None

    def _notify_dispatch(self, job: "_Job") -> None:
        """Report a dispatch to the batch's progress callback:
        ``started`` on the first attempt, ``retrying`` after a crash.
        Never raises — progress is advisory."""
        if self._progress is None:
            return
        event = "started" if job.attempts <= 1 else "retrying"
        try:
            self._progress(event, job.request)
        except Exception:  # noqa: BLE001 — progress must not fail work
            pass

    # -- public API ----------------------------------------------------
    def run_batch(self, requests: Sequence[SpecRequest],
                  progress: Callable[[str, SpecRequest], None]
                  | None = None) -> list[SpecResult]:
        """Serve a batch; one result per request, in request order.

        Identical requests submitted in the *same* batch may each run
        once (the cache fills when the first finishes); across batches
        and waves the later ones hit the cache.

        ``progress``, when given, is called with ``("started",
        request)`` as each cache-missing request is dispatched to a
        worker and ``("retrying", request)`` on every re-dispatch
        after a crash — the seam the gateway's streaming-progress mode
        rides.  The callback runs on the scheduling thread and must be
        cheap; anything it raises is swallowed (progress reporting
        must never fail a request).
        """
        self._progress = progress
        try:
            return self._run_batch(requests)
        finally:
            self._progress = None

    def _run_batch(self, requests: Sequence[SpecRequest]) \
            -> list[SpecResult]:
        results: list[SpecResult | None] = [None] * len(requests)
        jobs: list[_Job] = []
        for index, request in enumerate(requests):
            self.stats.submitted += 1
            key = request.fingerprint()
            hit = self.cache.get(key)
            if hit is None:
                hit = self._store_lookup(key)
            if hit is not None:
                self.stats.completed += 1
                if hit.compiled is not None:
                    self.backend_stats.artifact_reuses += 1
                results[index] = hit.for_request(request, cached=True)
            elif self.quarantine.short_circuit(key):
                # A poison pill inside its TTL: degrade without
                # burning a single pool restart on it.
                results[index] = self._degrade(
                    _Job(index, request, key), "quarantined")
            else:
                jobs.append(_Job(index, request, key))
        if self.workers == 0:
            for job in jobs:
                results[job.index] = self._run_inline(job)
        else:
            self._run_pooled(jobs, results)
        self._sync_health()
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    def run_one(self, request: SpecRequest,
                progress: Callable[[str, SpecRequest], None]
                | None = None) -> SpecResult:
        return self.run_batch([request], progress=progress)[0]

    def health(self) -> dict:
        """JSON-ready hardening introspection: breaker states, the
        quarantine table, watchdog activity, injected faults.  The
        ``ppe serve`` ``{"op": "health"}`` answer and the ``--health``
        CLI output."""
        self._sync_health()
        return {
            "breakers": {name: breaker.snapshot()
                         for name, breaker in self.breakers.items()},
            "quarantine": self.quarantine.snapshot(),
            "watchdog": {"recycles": self.stats.watchdog_recycles,
                         "timeout": self.watchdog_timeout},
            "faults": dict(self.stats.faults_injected),
            "pool": {"workers": self.workers,
                     "restarts": self.stats.pool_restarts},
        }

    def stats_dict(self) -> dict:
        """The ``ServiceStats`` snapshot with the hardening sections
        freshly synced (what ``serve``'s ``stats`` op answers)."""
        self._sync_health()
        return self.stats.as_dict()

    def close(self) -> None:
        if self.store is not None:
            self.store.close()
        # Every future is reaped before run_batch returns, so the pool
        # is idle here and waiting is cheap; wait=False would leave the
        # executor for the interpreter's atexit hook to find half
        # torn down (a "Bad file descriptor" traceback on stderr).
        # Pools abandoned with a still-grinding worker go through
        # _recycle_pool instead, which must not wait.
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "SpecializationService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- health sync ---------------------------------------------------
    def _sync_health(self) -> None:
        """Mirror the hardening objects into ``ServiceStats`` so the
        ``--profile`` report and the ``stats`` serve op carry them."""
        self.stats.breaker_opens = sum(
            breaker.opens for breaker in self.breakers.values())
        self.stats.breaker_short_circuits = sum(
            breaker.short_circuits
            for breaker in self.breakers.values())
        self.stats.breaker_seams = {
            name: breaker.snapshot()
            for name, breaker in self.breakers.items()}
        self.stats.quarantined = self.quarantine.short_circuits
        self.stats.poison_pills = self.quarantine.pills
        self.stats.quarantine_detail = self.quarantine.snapshot()
        merged = dict(self._worker_faults)
        injector = _active_injector()
        if injector is not None:
            for label, count in injector.counters().items():
                merged[label] = merged.get(label, 0) + count
        self.stats.faults_injected = merged

    def _absorb_fault_events(self, outcome: dict) -> None:
        """Fold a pool worker's injected-fault events into the
        service-wide counters.  Inline mode shares the in-process
        injector, whose counters :meth:`_sync_health` reads directly —
        folding its events too would double-count."""
        if self.workers == 0:
            return
        for event in outcome.get("fault_events", ()):
            label = event.split("@", 1)[0]          # seam#hit:kind
            seam, _, rest = label.partition("#")
            kind = rest.rpartition(":")[2]
            key = f"{seam}:{kind}"
            self._worker_faults[key] = \
                self._worker_faults.get(key, 0) + 1

    # -- the persistent tier -------------------------------------------
    def _store_lookup(self, key: str) -> SpecResult | None:
        """Read-through to the disk tier; a hit is promoted into the
        in-memory LRU so the next identical request never touches
        disk.  Any payload the current build cannot rehydrate counts
        as corrupt and misses.  Behind the ``store`` circuit breaker:
        a persistently failing store is skipped for a cooldown instead
        of paying lock-retry latency on every request."""
        if self.store is None:
            return None
        breaker = self.breakers["store"]
        if not breaker.allow():
            return None
        trouble_before = self._store_trouble()
        payload = self.store.get(key)
        result = None
        if payload is not None:
            try:
                result = SpecResult.from_dict(payload)
            except ValueError:
                self.stats.store_corrupt += 1
                self.store.delete(key)
        if self._store_trouble() > trouble_before:
            breaker.record_failure()
        else:
            breaker.record_success()
        if result is None:
            return None
        self.cache.put(key, result)
        return result

    def _store_put(self, key: str, result: SpecResult) -> None:
        """Write-behind on completion; best effort (a failed write is
        counted by the store, never surfaced).  Behind the ``store``
        breaker like the read path."""
        if self.store is None or result.degraded:
            return
        breaker = self.breakers["store"]
        if not breaker.allow():
            return
        trouble_before = self._store_trouble()
        committed = self.store.put(key, result.to_dict())
        if committed and self._store_trouble() == trouble_before:
            breaker.record_success()
        else:
            breaker.record_failure()

    def _store_trouble(self) -> int:
        """The store-failure odometer the breaker watches: transient
        errors and corruption events both count (the store itself
        never raises)."""
        return self.stats.store_errors + self.stats.store_corrupt

    # -- payload shaping -----------------------------------------------
    def _deadline_of(self, job: _Job) -> float | None:
        return job.request.deadline if job.request.deadline is not None \
            else self.default_deadline

    def _payload_for(self, job: _Job) -> dict:
        """The worker payload, with the request's deadline mapped onto
        a cooperative engine wall-clock budget (see module docstring).
        An explicit ``max_wall_seconds`` in the request wins."""
        payload = job.request.to_payload()
        for name, value in self.default_config.items():
            payload["config"].setdefault(name, value)
        # The genext engine wants the persistent store (for emitted
        # genext bundles) and the backend choice (to compile residuals
        # worker-side, straight off the AST) in the worker process.
        if self.store is not None:
            payload["store_path"] = str(self.store.path)
        if self.backend == "compiled":
            payload["backend"] = "compiled"
        if self.fault_plan is not None:
            payload["fault_plan"] = self.fault_plan.as_dict()
        deadline = self._deadline_of(job)
        if deadline is not None \
                and self.deadline_budget_fraction is not None:
            payload["config"].setdefault(
                "max_wall_seconds",
                deadline * self.deadline_budget_fraction)
        return payload

    # -- inline mode ---------------------------------------------------
    def _run_inline(self, job: _Job) -> SpecResult:
        while True:
            payload = self._payload_for(job)
            payload["inline"] = True
            job.attempts += 1
            self._notify_dispatch(job)
            try:
                fault_point("scheduler.dispatch", key=job.request.id)
                outcome = execute_request(payload)
            except Exception:  # noqa: BLE001 — crash semantics
                self.stats.worker_crashes += 1
                pill = self.quarantine.record_crash(job.key)
                if job.attempts >= self.max_attempts:
                    return self._degrade(job, "worker-crash")
                if pill:
                    return self._degrade(job, "quarantined")
                self.stats.retries += 1
                delay = self._backoff_delay(job)
                self._sleep(delay)
                self.stats.backoff_seconds += delay
                continue
            return self._absorb(job, outcome)

    # -- pooled mode ---------------------------------------------------
    def _run_pooled(self, jobs: Sequence[_Job],
                    results: list[SpecResult | None]) -> None:
        pending = list(jobs)
        # After a pool break, retries run one per wave: a persistently
        # crashing request keeps breaking the shared pool, and wave-mates
        # caught in the wreckage would burn their own retry budgets as
        # collateral.  Serial waves isolate the culprit.
        serial = False
        while pending:
            runnable: list[_Job] = []
            for job in pending:
                hit = self.cache.peek(job.key)
                if hit is not None:
                    self.stats.cache_hits += 1
                    self.stats.completed += 1
                    if hit.compiled is not None:
                        self.backend_stats.artifact_reuses += 1
                    results[job.index] = hit.for_request(
                        job.request, cached=True)
                elif self.quarantine.short_circuit(job.key):
                    # The fingerprint went toxic while this job waited
                    # (an identical pill ahead of it in the batch).
                    results[job.index] = self._degrade(
                        job, "quarantined")
                else:
                    runnable.append(job)
            if not runnable:
                return
            wave = runnable[:1] if serial else runnable
            leftover = runnable[1:] if serial else []
            pending = []
            broken, hung = self._run_wave(wave, pending, results)
            if broken or hung:
                self._recycle_pool(hung=hung)
                serial = True
            if pending:
                delay = max(job.backoff for job in pending)
                self._sleep(delay)
                self.stats.backoff_seconds += delay
            pending.extend(leftover)

    def _run_wave(self, wave: Sequence[_Job], pending: list[_Job],
                  results: list[SpecResult | None]) -> tuple[bool, int]:
        """Submit one wave and reap every future.  Returns ``(broken,
        hung)``: whether the pool must be recycled, and how many
        futures were declared hung by the watchdog (their members are
        terminated by :meth:`_recycle_pool`)."""
        pool = self._ensure_pool()
        broken = False
        hung = 0
        #: future -> (job, absolute reap limit or None, is_deadline).
        inflight: dict[Future, tuple[_Job, float | None, bool]] = {}
        for job in wave:
            job.attempts += 1
            self._notify_dispatch(job)
            try:
                fault_point("scheduler.dispatch", key=job.request.id)
                future = pool.submit(execute_request,
                                     self._payload_for(job))
            except Exception:  # noqa: BLE001 — dispatch is a crash seam
                self.stats.worker_crashes += 1
                broken |= self._crashed(job, pending, results)
                continue
            deadline = self._deadline_of(job)
            if deadline is not None:
                inflight[future] = (job, monotonic() + deadline, True)
            elif self.watchdog_timeout is not None:
                inflight[future] = (
                    job, monotonic() + self.watchdog_timeout, False)
            else:
                inflight[future] = (job, None, False)
        while inflight:
            now = monotonic()
            for future in list(inflight):
                job, limit, is_deadline = inflight[future]
                if limit is None or future.done() or now < limit:
                    continue
                # Past its bound and still running: hung.  Degrade the
                # request now; the member is killed after the wave so
                # wave-mates on healthy members finish undisturbed.
                if is_deadline:
                    self.stats.timeouts += 1
                    reason = "deadline"
                else:
                    reason = "watchdog"
                future.cancel()
                results[job.index] = self._degrade(job, reason)
                del inflight[future]
                hung += 1
                broken = True
            if not inflight:
                break
            limits = [limit for _, limit, _ in inflight.values()
                      if limit is not None]
            timeout = max(min(limits) - monotonic(), 0.0) \
                if limits else None
            done, _ = wait(set(inflight), timeout=timeout,
                           return_when=FIRST_COMPLETED)
            for future in done:
                job, _, _ = inflight.pop(future)
                try:
                    outcome = future.result()
                except Exception:  # noqa: BLE001
                    # The pool broke (a worker died,
                    # BrokenProcessPool) — or something unforeseen;
                    # either way the caller must not see it.  Retry
                    # while attempts remain.
                    self.stats.worker_crashes += 1
                    broken |= self._crashed(job, pending, results)
                else:
                    results[job.index] = self._absorb(job, outcome)
        return broken, hung

    def _crashed(self, job: _Job, pending: list[_Job],
                 results: list[SpecResult | None]) -> bool:
        """Crash bookkeeping shared by dispatch and reap failures:
        charge the fingerprint, then degrade (attempts spent or
        quarantined) or queue the retry.  Returns ``True`` (the pool
        must be considered broken)."""
        pill = self.quarantine.record_crash(job.key)
        if job.attempts >= self.max_attempts:
            results[job.index] = self._degrade(job, "worker-crash")
        elif pill:
            # The fingerprint just went toxic: stop burning attempts
            # (and pool restarts) on it mid-request.
            results[job.index] = self._degrade(job, "quarantined")
        else:
            self.stats.retries += 1
            job.backoff = self._backoff_delay(job)
            pending.append(job)
        return True

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _recycle_pool(self, hung: int = 0) -> None:
        """Tear the pool down for a rebuild.  With ``hung`` members
        stuck past their bound, the watchdog *terminates* the pool's
        processes instead of abandoning them to grind forever (the
        pre-watchdog leak), and counts the recycle."""
        if self._pool is None:
            return
        processes = []
        if hung:
            processes = list(
                getattr(self._pool, "_processes", {}).values())
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None
        self.stats.pool_restarts += 1
        if hung:
            self.stats.watchdog_recycles += hung
            for process in processes:
                try:
                    process.terminate()
                except Exception:  # noqa: BLE001 — already gone is fine
                    pass

    # -- outcomes ------------------------------------------------------
    def _backoff_delay(self, job: _Job) -> float:
        return min(self.backoff_cap,
                   self.backoff_base * (2 ** (job.attempts - 1)))

    def _absorb(self, job: _Job, outcome: dict) -> SpecResult:
        self._absorb_tiers(outcome)
        self._absorb_fault_events(outcome)
        if outcome.get("failed"):
            self.stats.errors += 1
            category = outcome.get("category")
            if category:
                self.stats.errors_by_category[category] = \
                    self.stats.errors_by_category.get(category, 0) + 1
            return self._degrade(job, outcome.get("error", "failed"))
        self.quarantine.record_success(job.key)
        compiled = outcome.get("compiled")
        if compiled is not None:
            # The worker compiled the residual itself (the genext
            # engine's fused path); don't re-do it here.
            self.backend_stats.compiles += 1
        else:
            compiled = self._compile_residual(outcome["residual"])
        result = SpecResult(
            residual=outcome["residual"],
            goal_params=tuple(outcome.get("goal_params", ())),
            engine=job.request.engine, id=job.request.id,
            attempts=job.attempts, stats=outcome.get("stats", {}),
            seconds=outcome.get("seconds", 0.0),
            compiled=compiled)
        self.stats.completed += 1
        budget = (outcome.get("stats") or {}).get("budget") or {}
        if budget.get("degradations"):
            # The engine degraded in-engine: still a real residual,
            # but keep it out of the cross-request cache — the
            # deadline-mapped wall budget is not in the fingerprint,
            # so a timing-dependent, less-specialized residual could
            # shadow a fully specialized answer for identical requests.
            self.stats.engine_degradations += 1
            return result
        self.cache.put(job.key, result)
        self._store_put(job.key, result)
        return result

    def _absorb_tiers(self, outcome: dict) -> None:
        """Fold a worker's per-request amortization-tier counters
        (genext cache/store/emit, offline analysis memo) into the
        service-wide stats."""
        tiers = outcome.get("tiers") or {}
        self.stats.genext_hits += tiers.get("genext_hits", 0)
        self.stats.genext_store_hits += \
            tiers.get("genext_store_hits", 0)
        self.stats.genext_store_writes += \
            tiers.get("genext_store_writes", 0)
        self.stats.genext_emits += tiers.get("genext_emits", 0)
        self.stats.analysis_memo_hits += \
            tiers.get("analysis_memo_hits", 0)
        self.stats.analysis_memo_misses += \
            tiers.get("analysis_memo_misses", 0)

    def _compile_residual(self, residual: str) -> dict | None:
        """With ``backend="compiled"``, the artifact stored alongside a
        successful residual (and with it, in the cross-request cache).
        Never fails the request: a residual the backend cannot compile
        (e.g. nested past CPython's parser limits) just ships without
        an artifact.  Behind the ``compile`` circuit breaker, so a
        persistently failing lowering path stops being attempted for a
        cooldown."""
        if self.backend != "compiled":
            return None
        breaker = self.breakers["compile"]
        if not breaker.allow():
            return None
        from repro.backend import compile_program
        started = monotonic()
        try:
            artifact = compile_program(
                parse_program(residual)).artifact()
        except Exception:  # noqa: BLE001 — artifact is best-effort
            breaker.record_failure()
            return None
        breaker.record_success()
        self.backend_stats.compiles += 1
        self.backend_stats.compile_seconds += monotonic() - started
        return artifact

    def _degrade(self, job: _Job, reason: str) -> SpecResult:
        """Graceful degradation: the trivially-residual program, or —
        if the source will not even parse — the source itself."""
        self.stats.degraded += 1
        residual, goal_params = _fallback_residual(job.request.source)
        return SpecResult(
            residual=residual, goal_params=goal_params,
            engine=job.request.engine, id=job.request.id,
            degraded=True, reason=reason, attempts=job.attempts)


def _fallback_residual(source: str) -> tuple[str, tuple[str, ...]]:
    try:
        program = parse_program(source)
        division = [DYN] * program.main.arity
        result = specialize_simple(program, division, _FALLBACK_CONFIG)
        return pretty_program(result.program), result.goal_params
    except Exception:  # noqa: BLE001 — degradation must not raise
        return source, ()
