"""The asynchronous submission seam over the blocking scheduler.

:class:`~repro.service.scheduler.SpecializationService` is a blocking
batch engine: ``run_batch`` parks the calling thread on pool futures
until the whole wave is reaped.  An asyncio front door (the gateway)
must never do that on its event loop — accepting connections, shedding
overload and answering ``/v1/health`` all have to keep running while a
wave grinds.

:class:`AsyncSubmitter` is the seam between the two worlds: a single
daemon thread owns the service and pumps a thread-safe **priority**
queue of submissions.  Callers (any thread, including an event loop)
get a :class:`concurrent.futures.Future` back immediately; asyncio
callers wrap it with :func:`asyncio.wrap_future` and await.  The pump
drains opportunistically — the first submission blocks, then up to
``batch_max - 1`` more are taken without waiting — so concurrent
traffic forms real waves over the service's worker pool instead of
trickling through one request at a time.

Two-level priority: submissions carry :data:`HIGH` or :data:`NORMAL`;
the queue is ordered ``(priority, arrival)``, so a high-priority
request jumps every queued normal one but never preempts work already
dispatched.  FIFO is preserved within a lane.

Per-submission progress callbacks ride the scheduler's ``progress``
seam: the pump fans the batch-wide ``(event, request)`` stream back
out to the submission that owns the request (by object identity — the
exact instances submitted are the ones the scheduler reports on).
Callbacks run on the pump thread; the gateway bounces them onto its
event loop with ``call_soon_threadsafe``.

The service's no-raise contract carries over: a submission's future
resolves with a :class:`~repro.service.results.SpecResult` (possibly
``degraded=True``), or — only if the service itself broke its
contract — with that exception.  Futures cancelled while still queued
are skipped, not run.
"""

from __future__ import annotations

import itertools
import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable

from repro.service.results import SpecRequest, SpecResult
from repro.service.scheduler import SpecializationService

#: Priority ranks: lower sorts first.  Exactly two lanes — the
#: gateway's API-key-keyed fast lane and everyone else.
HIGH = 0
NORMAL = 1

#: The close sentinel outranks both lanes so shutdown never waits
#: behind queued work (queued submissions are cancelled instead).
_SHUTDOWN_RANK = -1


@dataclass(order=True)
class _Ticket:
    """One queued submission; ordering is (priority, arrival seq)."""

    priority: int
    seq: int
    submission: "_Submission | None" = field(compare=False,
                                             default=None)


@dataclass
class _Submission:
    request: SpecRequest
    future: "Future[SpecResult]"
    progress: Callable[[str, SpecRequest], None] | None = None


class AsyncSubmitter:
    """Non-blocking, priority-ordered submission over one service."""

    def __init__(self, service: SpecializationService,
                 batch_max: int = 8) -> None:
        if batch_max < 1:
            raise ValueError(
                f"batch_max must be >= 1, got {batch_max}")
        self.service = service
        self.batch_max = batch_max
        self._queue: "queue.PriorityQueue[_Ticket]" = \
            queue.PriorityQueue()
        self._seq = itertools.count()
        self._closed = False
        self._thread = threading.Thread(
            target=self._pump, name="ppe-submitter", daemon=True)
        self._thread.start()

    # -- submission side ----------------------------------------------
    def submit(self, request: SpecRequest, priority: int = NORMAL,
               progress: Callable[[str, SpecRequest], None]
               | None = None) -> "Future[SpecResult]":
        """Queue one request; returns its future immediately."""
        if self._closed:
            raise RuntimeError("submitter is closed")
        if priority not in (HIGH, NORMAL):
            raise ValueError(f"priority must be HIGH ({HIGH}) or "
                             f"NORMAL ({NORMAL}), got {priority}")
        future: "Future[SpecResult]" = Future()
        self._queue.put(_Ticket(priority, next(self._seq),
                                _Submission(request, future, progress)))
        return future

    def pending(self) -> int:
        """Submissions queued but not yet picked up by the pump."""
        return self._queue.qsize()

    def close(self) -> None:
        """Stop the pump (jumping ahead of queued work), cancel
        whatever was still queued, and join the thread.  Idempotent.
        The in-flight wave, if any, finishes and resolves its futures
        first — the scheduler cannot abandon dispatched work."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_Ticket(_SHUTDOWN_RANK, next(self._seq)))
        self._thread.join()
        while True:
            try:
                ticket = self._queue.get_nowait()
            except queue.Empty:
                break
            if ticket.submission is not None:
                ticket.submission.future.cancel()

    def __enter__(self) -> "AsyncSubmitter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- pump side -----------------------------------------------------
    def _pump(self) -> None:
        while True:
            ticket = self._queue.get()
            if ticket.submission is None:
                return
            batch = [ticket.submission]
            stop = False
            while len(batch) < self.batch_max:
                try:
                    ticket = self._queue.get_nowait()
                except queue.Empty:
                    break
                if ticket.submission is None:
                    stop = True
                    break
                batch.append(ticket.submission)
            self._run(batch)
            if stop:
                return

    def _run(self, batch: list[_Submission]) -> None:
        # Mark everything RUNNING first; submissions cancelled while
        # queued drop out here and are never dispatched.
        live = [submission for submission in batch
                if submission.future.set_running_or_notify_cancel()]
        if not live:
            return
        owners = {id(submission.request): submission
                  for submission in live}

        def fan_out(event: str, request: SpecRequest) -> None:
            submission = owners.get(id(request))
            if submission is not None \
                    and submission.progress is not None:
                submission.progress(event, request)

        try:
            results = self.service.run_batch(
                [submission.request for submission in live],
                progress=fan_out)
        except Exception as error:  # noqa: BLE001 — contract breach
            # The service promises never to raise; if it ever does,
            # surface the breach on every waiter instead of wedging
            # them forever.
            for submission in live:
                submission.future.set_exception(error)
            return
        for submission, result in zip(live, results):
            submission.future.set_result(result)
