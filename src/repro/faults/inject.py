"""The :class:`FaultInjector` and the injection-point functions.

Call sites declare a *seam* and what they can realize::

    # a plain failure seam: may sleep or raise the designated error
    fault_point("store.read", key=key,
                error=lambda msg: sqlite3.OperationalError(msg))

    # a payload-bearing seam: may return a corrupted payload
    text = fault_payload("store.read.payload", text, key=key)

    # a seam that can kill the process
    fault_point("worker.execute", key=request_id, crash=crash_action)

With no installed plan both functions are a single module-global
``None`` check — the production cost of carrying the injection points
(benchmarked ≤ 2 % in ``benchmarks/bench_chaos_soak.py``).

Determinism: whether hit *n* of a seam fires — and which kind it
realizes — is a pure SHA-256 hash of ``(seed, seam, n)``.  Replaying
the same plan over the same per-process call sequence therefore
reproduces the identical injection trace; :meth:`FaultInjector.trace`
exposes it for assertion (``seam#hit:kind[@key]`` strings).
"""

from __future__ import annotations

import hashlib
import time
from typing import Any, Callable, Mapping

from repro.faults.plan import FaultPlan, SeamSchedule


class InjectedFault(RuntimeError):
    """The default exception an ``error`` fault raises when the call
    site designates no seam-specific exception."""


class FaultInjector:
    """One installed :class:`FaultPlan`, with per-seam hit counters
    and the trace of every firing."""

    def __init__(self, plan: FaultPlan,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.plan = plan
        self._sleep = sleep
        #: Hits per seam (fired or not), 1-based after increment.
        self.hits: dict[str, int] = {}
        #: Firings per seam (the ``times`` cap meters these).
        self.fired: dict[str, int] = {}
        #: Injections realized, by ``seam:kind``.
        self.injected: dict[str, int] = {}
        #: The ordered trace: ``seam#hit:kind[@key]``.
        self.events: list[str] = []

    # -- decisions -----------------------------------------------------
    def _decide(self, schedule: SeamSchedule, seam: str,
                hit: int) -> str | None:
        """The kind hit ``hit`` realizes, or ``None``.  Pure in
        ``(seed, seam, hit)``."""
        fired = self.fired.get(seam, 0)
        if schedule.times is not None and fired >= schedule.times:
            return None
        if schedule.triggers(hit):
            pass
        elif schedule.probability > 0.0:
            if _unit(self.plan.seed, seam, hit, "fire") \
                    >= schedule.probability:
                return None
        else:
            return None
        kinds = schedule.kinds
        if len(kinds) == 1:
            return kinds[0]
        index = int(_unit(self.plan.seed, seam, hit, "kind")
                    * len(kinds))
        return kinds[min(index, len(kinds) - 1)]

    # -- realization ---------------------------------------------------
    def hit(self, seam: str, key: str | None = None,
            error: Callable[[str], BaseException] | None = None,
            crash: Callable[[], Any] | None = None) -> None:
        """One pass through a plain injection point; may sleep, raise,
        or kill the process.  Unsupported kinds (a ``crash`` where the
        call site gave no crash action) are skipped silently."""
        schedule = self.plan.seams.get(seam)
        if schedule is None:
            return
        hit = self.hits.get(seam, 0) + 1
        self.hits[seam] = hit
        kind = self._decide(schedule, seam, hit)
        if kind is None or kind == "corrupt":
            return
        if kind == "crash" and crash is None:
            return
        self._record(seam, hit, kind, key)
        if kind == "latency":
            self._sleep(schedule.latency_seconds)
        elif kind == "hang":
            self._sleep(schedule.hang_seconds)
        elif kind == "error":
            message = f"injected fault at {seam} (hit {hit})"
            raise (error(message) if error is not None
                   else InjectedFault(message))
        elif kind == "crash":
            crash()

    def hit_payload(self, seam: str, payload: str,
                    key: str | None = None) -> str:
        """One pass through a payload-bearing point; may return a
        corrupted payload (only the ``corrupt`` kind applies)."""
        schedule = self.plan.seams.get(seam)
        if schedule is None:
            return payload
        hit = self.hits.get(seam, 0) + 1
        self.hits[seam] = hit
        kind = self._decide(schedule, seam, hit)
        if kind != "corrupt":
            return payload
        self._record(seam, hit, kind, key)
        return _corrupt(payload, self.plan.seed, seam, hit)

    def _record(self, seam: str, hit: int, kind: str,
                key: str | None) -> None:
        self.fired[seam] = self.fired.get(seam, 0) + 1
        label = f"{seam}:{kind}"
        self.injected[label] = self.injected.get(label, 0) + 1
        event = f"{seam}#{hit}:{kind}"
        if key:
            event += f"@{key}"
        self.events.append(event)

    # -- introspection -------------------------------------------------
    def trace(self) -> list[str]:
        """The ordered injection trace (a copy)."""
        return list(self.events)

    def counters(self) -> dict[str, int]:
        """Injections realized, keyed ``seam:kind`` — the ``faults``
        section of :class:`~repro.observability.ServiceStats`."""
        return dict(self.injected)


def _unit(seed: int, seam: str, hit: int, salt: str) -> float:
    """A deterministic draw in ``[0, 1)`` from ``(seed, seam, hit)``."""
    blob = f"{seed}|{seam}|{hit}|{salt}".encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def _corrupt(payload: str, seed: int, seam: str, hit: int) -> str:
    """Deterministically damage one character of ``payload`` (or
    append one to an empty payload) — enough to break any checksum."""
    if not payload:
        return "\x00"
    index = int(_unit(seed, seam, hit, "pos") * len(payload))
    index = min(index, len(payload) - 1)
    flipped = chr((ord(payload[index]) ^ 0x01) & 0x10FFFF)
    if flipped == payload[index]:  # pragma: no cover — xor 1 always differs
        flipped = "\x00"
    return payload[:index] + flipped + payload[index + 1:]


#: The active injector; ``None`` (the production default) makes every
#: injection point a single attribute check.
_ACTIVE: FaultInjector | None = None


def install(plan: FaultPlan | Mapping[str, Any] | None,
            sleep: Callable[[float], None] = time.sleep) \
        -> FaultInjector | None:
    """Install ``plan`` process-globally (``None`` uninstalls).
    Returns the active injector.  Re-installing an identical plan
    keeps the current injector (and its counters) — the idempotence
    long-lived worker processes rely on."""
    global _ACTIVE
    if plan is None:
        _ACTIVE = None
        return None
    if not isinstance(plan, FaultPlan):
        plan = FaultPlan.from_dict(plan)
    if _ACTIVE is not None and _ACTIVE.plan.digest() == plan.digest():
        return _ACTIVE
    _ACTIVE = FaultInjector(plan, sleep=sleep)
    return _ACTIVE


def uninstall() -> None:
    """Remove the active plan (every point back to a no-op)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> FaultInjector | None:
    """The process-global injector, if a plan is installed."""
    return _ACTIVE


def install_from_env() -> FaultInjector | None:
    """Install the plan named by ``REPRO_FAULT_PLAN``, if any."""
    plan = FaultPlan.from_env()
    return install(plan) if plan is not None else None


def fault_point(seam: str, key: str | None = None,
                error: Callable[[str], BaseException] | None = None,
                crash: Callable[[], Any] | None = None) -> None:
    """A named injection point; a no-op unless a plan is installed."""
    if _ACTIVE is None:
        return
    _ACTIVE.hit(seam, key=key, error=error, crash=crash)


def fault_payload(seam: str, payload: str,
                  key: str | None = None) -> str:
    """A payload-bearing injection point; identity unless a plan is
    installed (the ``corrupt`` kind mutates the payload)."""
    if _ACTIVE is None:
        return payload
    return _ACTIVE.hit_payload(seam, payload, key=key)
