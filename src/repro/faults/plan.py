"""The :class:`FaultPlan`: what to break, where, and when.

A plan is plain JSON so it travels everywhere a request does — the
``REPRO_FAULT_PLAN`` environment variable, the ``--fault-plan`` CLI
flag, and the worker payloads the scheduler ships to pool processes::

    {"seed": 42,
     "seams": {
       "store.read":    {"kinds": ["error"], "probability": 0.1},
       "worker.execute": {"kinds": ["crash", "hang"], "at": [3, 7],
                          "hang_seconds": 0.05}}}

Per-seam schedule fields (any combination; a hit fires when *any*
trigger matches):

``probability``
    Chance in ``[0, 1]`` that a given hit fires.  The draw is **not**
    a stateful RNG: it is a pure hash of ``(seed, seam, hit index)``,
    so two runs of the same plan over the same call sequence produce
    the identical injection trace.
``at``
    Explicit 1-based hit indices that always fire — the deterministic
    trigger the breaker/quarantine/watchdog unit tests use.
``every``
    Fire every N-th hit (1-based: hits N, 2N, ...).
``times``
    Cap on total firings for the seam (``None`` = unlimited).
``kinds``
    Fault kinds to choose from, a subset of :data:`FAULT_KINDS`; the
    choice among several is again a pure hash.  Kinds a call site does
    not support are skipped (a ``crash`` scheduled on a store seam is
    a no-op, not an error).
``hang_seconds`` / ``latency_seconds``
    Sleep durations for the ``hang`` and ``latency`` kinds.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping

#: Environment variable carrying a plan: inline JSON (first character
#: ``{``) or the path of a JSON file.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Every fault kind an injection point can be asked to realize.
#:
#: * ``crash``   — kill the worker process (pool) / raise
#:   :class:`~repro.service.worker.WorkerCrash` (inline); only
#:   supported at seams that declare a crash action.
#: * ``hang``    — sleep ``hang_seconds`` (drive deadlines/watchdog).
#: * ``latency`` — sleep ``latency_seconds`` (jitter, not failure).
#: * ``error``   — raise the call site's designated transient
#:   exception (e.g. a locked-database error at store seams).
#: * ``corrupt`` — mutate the payload passing through a
#:   :func:`~repro.faults.inject.fault_payload` point (drive checksum
#:   quarantine); only supported at payload-bearing seams.
FAULT_KINDS = ("crash", "hang", "latency", "error", "corrupt")

#: The named injection points threaded through the stack, with the
#: kinds each supports.  A plan naming an unknown seam is rejected up
#: front — a typo must not silently inject nothing.
SEAMS = {
    "store.read": ("error", "hang", "latency"),
    "store.read.payload": ("corrupt",),
    "store.write": ("error", "hang", "latency"),
    "store.evict": ("error",),
    "worker.execute": ("crash", "hang", "latency", "error"),
    "genext.load": ("error", "latency"),
    "backend.compile": ("error", "latency"),
    "scheduler.dispatch": ("error", "latency"),
    "serve.request": ("error", "latency"),
    "gateway.accept": ("error", "latency"),
    "gateway.admit": ("error", "latency"),
    "gateway.respond": ("error", "latency"),
}


@dataclass(frozen=True)
class SeamSchedule:
    """The validated per-seam schedule of one plan entry."""

    seam: str
    kinds: tuple[str, ...]
    probability: float = 0.0
    at: tuple[int, ...] = ()
    every: int | None = None
    times: int | None = None
    hang_seconds: float = 30.0
    latency_seconds: float = 0.01

    def triggers(self, hit: int) -> bool:
        """Does the schedule (probability aside) fire on ``hit``
        (1-based)?"""
        if hit in self.at:
            return True
        return self.every is not None and hit % self.every == 0

    def as_dict(self) -> dict:
        payload: dict[str, Any] = {"kinds": list(self.kinds)}
        if self.probability:
            payload["probability"] = self.probability
        if self.at:
            payload["at"] = list(self.at)
        if self.every is not None:
            payload["every"] = self.every
        if self.times is not None:
            payload["times"] = self.times
        payload["hang_seconds"] = self.hang_seconds
        payload["latency_seconds"] = self.latency_seconds
        return payload


_SCHEDULE_FIELDS = {"kinds", "probability", "at", "every", "times",
                    "hang_seconds", "latency_seconds"}


@dataclass(frozen=True)
class FaultPlan:
    """One validated fault-injection plan; see module docstring."""

    seed: int
    seams: Mapping[str, SeamSchedule] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise ValueError(
                f"fault plan must be an object, got {data!r}")
        unknown = sorted(set(data) - {"seed", "seams"})
        if unknown:
            raise ValueError(
                f"unknown fault-plan field(s) {unknown}; known: "
                f"['seams', 'seed']")
        seed = data.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError(f"fault-plan seed must be an int, got "
                             f"{seed!r}")
        seams: dict[str, SeamSchedule] = {}
        entries = data.get("seams") or {}
        if not isinstance(entries, Mapping):
            raise ValueError("fault-plan 'seams' must be an object")
        for seam, entry in entries.items():
            seams[seam] = _decode_schedule(seam, entry)
        return cls(seed=seed, seams=seams)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"fault plan is not valid JSON: {error}") from None
        return cls.from_dict(data)

    @classmethod
    def from_spec(cls, value: str) -> "FaultPlan":
        """Decode a plan *specifier*: inline JSON when the text starts
        with ``{``, else a file path.  The shape the ``--fault-plan``
        flag and ``REPRO_FAULT_PLAN`` both accept."""
        value = value.strip()
        if value.startswith("{"):
            return cls.from_json(value)
        try:
            text = open(value, "r", encoding="utf-8").read()
        except OSError as error:
            raise ValueError(
                f"cannot read fault plan {value!r}: {error}") from None
        return cls.from_json(text)

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) \
            -> "FaultPlan | None":
        """The plan named by ``REPRO_FAULT_PLAN`` (see
        :meth:`from_spec`); ``None`` when the variable is unset or
        empty."""
        value = (environ if environ is not None
                 else os.environ).get(FAULT_PLAN_ENV, "").strip()
        if not value:
            return None
        return cls.from_spec(value)

    def as_dict(self) -> dict:
        """The JSON-ready wire form (ships in worker payloads)."""
        return {"seed": self.seed,
                "seams": {seam: schedule.as_dict()
                          for seam, schedule in sorted(self.seams.items())}}

    def digest(self) -> str:
        """Stable identity used to skip redundant re-installs in
        long-lived worker processes."""
        import hashlib
        blob = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _decode_schedule(seam: str, entry: Any) -> SeamSchedule:
    if seam not in SEAMS:
        raise ValueError(f"unknown fault seam {seam!r}; known: "
                         f"{sorted(SEAMS)}")
    if not isinstance(entry, Mapping):
        raise ValueError(f"schedule for seam {seam!r} must be an "
                         f"object, got {entry!r}")
    unknown = sorted(set(entry) - _SCHEDULE_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown schedule field(s) {unknown} for seam {seam!r}; "
            f"known: {sorted(_SCHEDULE_FIELDS)}")
    kinds = entry.get("kinds")
    if kinds is None:
        # Default: everything the seam supports.
        kinds = list(SEAMS[seam])
    if isinstance(kinds, str):
        kinds = [kinds]
    if not kinds:
        raise ValueError(f"seam {seam!r}: 'kinds' must not be empty")
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"seam {seam!r}: unknown fault kind {kind!r}; known: "
                f"{list(FAULT_KINDS)}")
        if kind not in SEAMS[seam]:
            raise ValueError(
                f"seam {seam!r} does not support kind {kind!r}; "
                f"supported: {list(SEAMS[seam])}")
    probability = entry.get("probability", 0.0)
    if not isinstance(probability, (int, float)) \
            or isinstance(probability, bool) \
            or not 0.0 <= probability <= 1.0:
        raise ValueError(f"seam {seam!r}: probability must be in "
                         f"[0, 1], got {probability!r}")
    at = entry.get("at", ())
    if not isinstance(at, (list, tuple)) or any(
            not isinstance(n, int) or isinstance(n, bool) or n < 1
            for n in at):
        raise ValueError(f"seam {seam!r}: 'at' must be a list of "
                         f"1-based hit indices, got {at!r}")
    every = entry.get("every")
    if every is not None and (not isinstance(every, int)
                              or isinstance(every, bool) or every < 1):
        raise ValueError(f"seam {seam!r}: 'every' must be a positive "
                         f"int, got {every!r}")
    times = entry.get("times")
    if times is not None and (not isinstance(times, int)
                              or isinstance(times, bool) or times < 0):
        raise ValueError(f"seam {seam!r}: 'times' must be a "
                         f"non-negative int, got {times!r}")
    hang_seconds = _seconds(seam, entry, "hang_seconds", 30.0)
    latency_seconds = _seconds(seam, entry, "latency_seconds", 0.01)
    return SeamSchedule(
        seam=seam, kinds=tuple(kinds), probability=float(probability),
        at=tuple(sorted(at)), every=every, times=times,
        hang_seconds=hang_seconds, latency_seconds=latency_seconds)


def _seconds(seam: str, entry: Mapping[str, Any], name: str,
             default: float) -> float:
    value = entry.get(name, default)
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or value < 0:
        raise ValueError(f"seam {seam!r}: {name} must be a "
                         f"non-negative number, got {value!r}")
    return float(value)
