"""Deterministic, seeded fault injection for the serving stack.

The service's failure contract — *never raise, never serve wrong
bytes* — is enforced by machinery scattered across many seams:
scheduler retry/backoff, budget degradation, store quarantine, genext
re-emission, circuit breakers, the poison-pill quarantine and the
hung-worker watchdog.  This package is how all of those seams are
exercised **together**, on demand, reproducibly:

* :class:`FaultPlan` (:mod:`repro.faults.plan`) — a JSON-serializable
  description of *what* to break: a seed plus a per-seam schedule
  (probability and/or explicit hit triggers, fault kinds, timing
  knobs).  Settable via the ``REPRO_FAULT_PLAN`` environment variable
  (inline JSON or a file path) and the ``--fault-plan`` CLI flag.
* :class:`FaultInjector` (:mod:`repro.faults.inject`) — the active
  plan, consulted by named injection points
  (:func:`fault_point` / :func:`fault_payload`) threaded through every
  failure seam in the stack (see :data:`SEAMS`).  Decisions are a pure
  function of ``(seed, seam, hit-index)``, so re-running a seed
  reproduces the identical injection trace; every firing is recorded
  in an inspectable trace.

When no plan is installed (the production default), every injection
point short-circuits on one module-global ``None`` check — the
benchmarked overhead of the disabled path is ≤ 2 %
(``benchmarks/bench_chaos_soak.py``).
"""

from repro.faults.inject import (
    FaultInjector, InjectedFault, active, fault_payload, fault_point,
    install, install_from_env, uninstall)
from repro.faults.plan import FAULT_KINDS, FAULT_PLAN_ENV, SEAMS, FaultPlan

__all__ = [
    "FAULT_KINDS", "FAULT_PLAN_ENV", "FaultInjector", "FaultPlan",
    "InjectedFault", "SEAMS", "active", "fault_payload", "fault_point",
    "install", "install_from_env", "uninstall",
]
