"""Predicate-constraint propagation — the paper's stated future work.

Section 4.4 ends: "Redfun is able to extract properties from the
predicate of a conditional expression.  Then, these properties and their
negation are propagated to the consequent and alternative branches
respectively ... We are currently investigating this issue."  This
module implements that investigation as an opt-in extension
(``PEConfig(propagate_constraints=True)``) for the *online* specializer:

* when a conditional's test stays residual and has the shape
  ``op(u, v)`` with ``u``/``v`` residual variables or constants, each
  facet is asked to *refine* the operands' abstract values under the
  assumption that the test is true (then-branch) or false (else-branch);
* an assumed-true equality against a constant goes further: the variable
  is bound to the constant itself in that branch (the strongest possible
  refinement).

Facets opt in by populating ``refine_ops``: a map from comparison
operator to a function ``(assume, left, right) -> (left', right')``
returning refined abstract values (or the inputs unchanged).  The Sign
and Interval facets implement it; refinements are *meets*, so safety is
preserved by construction: the refined value still describes every
concrete value that can reach the branch.

The offline level is untouched — propagating constraints through
Figure 4 would change the analysis the paper actually defines.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.lang.ast import Const, Expr, Prim, Var
from repro.facets.base import Facet
from repro.facets.vector import FacetSuite, FacetVector

#: Comparison operators with a meaningful negation.
_NEGATION = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
             "=": "!=", "!=": "="}

RefineFn = Callable[[bool, object, object], tuple[object, object]]


def refine_branch_bindings(suite: FacetSuite, test: Expr,
                           lookup: Mapping[str, FacetVector],
                           assume: bool) -> dict[str, FacetVector]:
    """Refined facet vectors for residual variables mentioned in a
    comparison test, under the given truth assumption.

    ``lookup`` maps *residual* variable names to their current vectors;
    the result maps the refined subset (possibly empty).  An
    assumed-true ``(= x c)`` refines ``x``'s PE component to the
    constant ``c``.
    """
    if not isinstance(test, Prim) or test.op not in _NEGATION \
            or len(test.args) != 2:
        return {}
    left, right = test.args
    left_vector = _operand_vector(suite, left, lookup)
    right_vector = _operand_vector(suite, right, lookup)
    if left_vector is None or right_vector is None:
        return {}

    refined: dict[str, FacetVector] = {}
    new_left, new_right = _refine_pair(suite, test.op, assume,
                                       left_vector, right_vector)
    if isinstance(left, Var) and new_left != left_vector:
        refined[left.name] = new_left
    if isinstance(right, Var) and new_right != right_vector:
        refined[right.name] = new_right
    return refined


def _operand_vector(suite: FacetSuite, operand: Expr,
                    lookup: Mapping[str, FacetVector]) \
        -> FacetVector | None:
    if isinstance(operand, Const):
        return suite.const_vector(operand.value)
    if isinstance(operand, Var):
        return lookup.get(operand.name)
    return None


def _refine_pair(suite: FacetSuite, op: str, assume: bool,
                 left: FacetVector, right: FacetVector) \
        -> tuple[FacetVector, FacetVector]:
    # Equality against a constant pins the PE component itself.
    if op == "=" and assume or op == "!=" and not assume:
        if right.pe.is_const and not left.pe.is_const:
            left = suite.const_vector(right.pe.constant())
        elif left.pe.is_const and not right.pe.is_const:
            right = suite.const_vector(left.pe.constant())

    if left.sort is None or left.sort != right.sort:
        return left, right
    facets = suite.facets_for(left.sort)
    left_user = list(left.user)
    right_user = list(right.user)
    for index, facet in enumerate(facets):
        refiner = getattr(facet, "refine_ops", {}).get(op)
        if refiner is None:
            continue
        new_left, new_right = refiner(assume, left_user[index],
                                      right_user[index])
        left_user[index] = new_left
        right_user[index] = new_right
    new_left_vector = suite.make_vector(left.sort, left.pe,
                                        tuple(left_user))
    new_right_vector = suite.make_vector(right.sort, right.pe,
                                         tuple(right_user))
    # A refinement that empties a component proves the branch dead; the
    # smashed bottom signals that to the specializer.
    return (suite.smash(new_left_vector),
            suite.smash(new_right_vector))


# The per-facet refinement tables live on the facets themselves
# (``Facet.refine_ops`` with the combinators from
# :mod:`repro.facets.base`); this module hosts the generic engine only.
