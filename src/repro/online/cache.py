"""The specialization cache ``Sf`` of Figures 2 and 3.

The cache maps a *specialization pattern* — function name plus, per
argument, either the constant it folded to or the facet information it
still carries — to the residual function generated for it.  This is what
"achieves instantiation and folding as in [5] and ensures uniqueness of
specialized functions": re-encountering a pattern emits a call to the
cached residual function instead of re-specializing, which is also what
ties recursive specializations off.

Keys must be hashable; facet components are plain hashable values by
construction.  The cache also implements the generalization ladder the
config's ``max_variants`` bound triggers (see
:meth:`SpecCache.generalize_key`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.lang.ast import FunDef
from repro.facets.vector import FacetSuite, FacetVector

#: Marker for a dynamic argument position inside a cache key.
DYNAMIC = "?"


@dataclass
class ResidualFunction:
    """One cache entry: the residual name, which argument positions stay
    as parameters, and (once specialization of the body finishes) the
    definition itself."""

    name: str
    source: str
    dynamic_positions: tuple[int, ...]
    params: tuple[str, ...]
    fundef: FunDef | None = None


class SpecCache:
    """``Sf`` plus residual-name allocation."""

    def __init__(self, reserved_names: Sequence[str]) -> None:
        self.entries: dict[Hashable, ResidualFunction] = {}
        self.order: list[ResidualFunction] = []
        self._taken = set(reserved_names)
        self._counters: dict[str, int] = {}

    def variants_of(self, source: str) -> int:
        """Number of cached specializations of one source function."""
        return sum(1 for entry in self.order if entry.source == source)

    def lookup(self, key: Hashable) -> ResidualFunction | None:
        return self.entries.get(key)

    def register(self, key: Hashable, source: str,
                 dynamic_positions: tuple[int, ...],
                 params: tuple[str, ...]) -> ResidualFunction:
        """Allocate a residual name and record the (not yet built)
        specialization — recursive references hit the entry before its
        body exists, exactly as the recursive ``FnEnv`` of Figure 3."""
        name = self._fresh_name(source)
        entry = ResidualFunction(name, source, dynamic_positions, params)
        self.entries[key] = entry
        self.order.append(entry)
        return entry

    def finish(self, entry: ResidualFunction, fundef: FunDef) -> None:
        entry.fundef = fundef

    def residual_defs(self) -> list[FunDef]:
        """Completed residual functions, in creation order (``MkProg``'s
        input)."""
        return [entry.fundef for entry in self.order
                if entry.fundef is not None]

    def _fresh_name(self, base: str) -> str:
        count = self._counters.get(base, 0) + 1
        candidate = f"{base}!{count}"
        while candidate in self._taken:
            count += 1
            candidate = f"{base}!{count}"
        self._counters[base] = count
        self._taken.add(candidate)
        return candidate


def make_key(suite: FacetSuite, fn: str,
             vectors: Sequence[FacetVector],
             generalization: int = 0) -> Hashable:
    """Build a cache key from the call's facet vectors.

    ``generalization`` selects a rung of the generalization ladder:
    0 = full precision (constants + facet components);
    1 = constants only (facet components dropped);
    2 = arity only (everything dynamic).
    """
    parts: list[Hashable] = [fn]
    for vector in vectors:
        if generalization >= 2:
            parts.append(DYNAMIC)
        elif vector.pe.is_const:
            parts.append(("c", vector.pe))
        elif generalization >= 1:
            parts.append((DYNAMIC, vector.sort))
        else:
            parts.append((DYNAMIC, vector.sort, vector.user))
    return tuple(parts)


def dynamic_positions(vectors: Sequence[FacetVector],
                      generalization: int = 0) -> tuple[int, ...]:
    """Argument positions that stay parameters of the residual function
    (everything the key did not pin to a constant)."""
    if generalization >= 2:
        return tuple(range(len(vectors)))
    return tuple(i for i, vector in enumerate(vectors)
                 if not vector.pe.is_const)
