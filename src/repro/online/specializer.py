"""Online parameterized partial evaluation — Figure 3 of the paper.

The valuation function ``PE`` threads three things through the program:
the residual expression being built, the product-of-facets value
describing it, and the specialization cache ``Sf`` (state on the
specializer object; the semantics' single-threading is Python's
evaluation order).  Per expression form:

* constants propagate to every facet through ``K^``;
* primitives go through the product operators ``omega_p`` of
  Definition 5 (:meth:`FacetSuite.apply_prim`): a constant produced by
  *any* facet replaces the expression and is re-abstracted into all
  facets, exactly the ``K^_P`` clauses of the figure;
* a conditional whose test partially evaluated to a constant is reduced;
  otherwise both branches are specialized and their facet values joined;
* calls go through ``APP`` — the unfold-or-specialize strategy described
  in :mod:`repro.online.config`.

Two engineering layers sit on top of the figure:

**Trampolined recursion.**  ``PE`` recurses as deeply as the program
unfolds; Python's C stack does not.  Instead of raising
``sys.setrecursionlimit`` (the old band-aid, which deep programs could
still segfault), every ``_pe*`` method is a *generator* that yields the
sub-computations it needs; :func:`repro.engine.trampoline.run_trampoline`
drives them from an explicit heap-allocated stack, so the Python stack
depth stays constant no matter how deep specialization goes.  The
evaluation order is exactly that of the direct-recursive code, so
residuals are byte-identical.

**Resource governance.**  Every step charges the run's
:class:`~repro.engine.budget.Budget`; when a soft budget (steps, wall
clock, residual nodes, unfold depth) is exhausted the engine does not
raise — it *generalizes at the offending point*: the call's facet
vector is widened to Dynamic (top), a residual call is emitted instead
of unfolding further, and a DegradeEvent is recorded.  Specialization
then terminates with a correct but less-specialized residual.  Only the
hard ``fuel`` backstop (and ``strict_budgets=True``) still raises, as
:class:`~repro.engine.errors.BudgetExhausted`.

The paper notes (end of Section 4.4) that Figure 3 does not propagate
predicate properties into conditional branches (Redfun-style
constraints); neither do we — see FUTURE.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Mapping, Sequence

from repro.engine.budget import STEP_STRIDE, DegradeEvent
from repro.engine.errors import BudgetExhausted, engine_guard
from repro.engine.trampoline import run_trampoline
from repro.lang.ast import (
    App, Call, Const, Expr, FunDef, If, Lam, Let, Prim, Var,
    count_occurrences)
from repro.lang.errors import PEError
from repro.lang.program import Program
from repro.lang.values import Value, is_value
from repro.facets.vector import FacetSuite, FacetVector
from repro.online.cache import (
    SpecCache, dynamic_positions, make_key)
from repro.online.config import PEConfig, PEStats, UnfoldStrategy
from repro.transform.cleanup import canonical_names, drop_unreachable
from repro.transform.simplify import definitely_total, simplify_program


@dataclass(frozen=True)
class SpecializationResult:
    """The outcome of one specialization run."""

    #: Cleaned residual program (simplified/tidied per config).
    program: Program
    #: Residual program exactly as ``MkProg`` built it.
    raw_program: Program
    #: The facet vector of the goal expression.
    vector: FacetVector
    stats: PEStats
    #: Parameter names the residual goal function kept.
    goal_params: tuple[str, ...]


@dataclass
class _Binding:
    expr: Expr
    vector: FacetVector


class OnlineSpecializer:
    """``PE_Prog`` of Figure 3 for one program and facet suite."""

    def __init__(self, program: Program, suite: FacetSuite | None = None,
                 config: PEConfig | None = None) -> None:
        program.validate()
        self.program = program
        self.functions = program.functions()
        self.suite = suite if suite is not None else FacetSuite()
        self.config = config if config is not None else PEConfig()
        self.stats = PEStats()
        self.cache = SpecCache(reserved_names=list(self.functions))
        self.budget = self.config.make_budget()
        self._gensym = 0

    # -- entry point ------------------------------------------------------
    def specialize(self, inputs: Sequence[FacetVector | Value]) \
            -> SpecializationResult:
        """Specialize the goal function with respect to ``inputs``.

        Each input is either a concrete value (fully static) or a
        :class:`FacetVector` (e.g. ``suite.input("vector", size=3)`` for
        the paper's "dynamic vector of known size 3").
        """
        main = self.program.main
        if len(inputs) != main.arity:
            raise PEError(
                f"{main.name}: expected {main.arity} inputs, "
                f"got {len(inputs)}")
        with engine_guard("online specialization"):
            vectors = [self.suite.const_vector(value) if is_value(value)
                       else value for value in inputs]
            env: dict[str, _Binding] = {}
            goal_params = []
            for param, vector in zip(main.params, vectors):
                assert isinstance(vector, FacetVector)
                if vector.pe.is_const:
                    env[param] = _Binding(Const(vector.pe.constant()),
                                          vector)
                else:
                    env[param] = _Binding(Var(param), vector)
                    goal_params.append(param)

            self.budget.start()
            started = perf_counter()
            try:
                body, vector = run_trampoline(self._pe(main.body, env,
                                                       depth=0))
            finally:
                self.stats.record_phase("specialize",
                                        perf_counter() - started)
                self.budget.charge_steps(self.stats.steps)
                self.stats.budget_used = self.budget.used()

            goal = FunDef(main.name, tuple(goal_params), body)
            raw = Program((goal, *self.cache.residual_defs()))
            cleaned = raw
            started = perf_counter()
            if self.config.simplify:
                cleaned = simplify_program(cleaned)
            if self.config.tidy:
                cleaned = canonical_names(drop_unreachable(cleaned))
            self.stats.record_phase("simplify",
                                    perf_counter() - started)
            return SpecializationResult(cleaned, raw, vector, self.stats,
                                        tuple(goal_params))

    # -- the valuation function PE ----------------------------------------
    def _pe(self, expr: Expr, env: Mapping[str, _Binding],
            depth: int):
        self._tick()
        if isinstance(expr, Const):
            return expr, self.suite.const_vector(expr.value)
        if isinstance(expr, Var):
            binding = env.get(expr.name)
            if binding is None:
                # First-class reference to a top-level function.
                return expr, self.suite.unknown(None)
            return binding.expr, binding.vector
        if isinstance(expr, Prim):
            return (yield from self._pe_prim(expr, env, depth))
        if isinstance(expr, If):
            return (yield from self._pe_if(expr, env, depth))
        if isinstance(expr, Let):
            return (yield from self._pe_let(expr, env, depth))
        if isinstance(expr, Call):
            return (yield from self._pe_call(expr.fn, expr.args, env,
                                             depth))
        if isinstance(expr, Lam):
            return (yield from self._pe_lambda(expr, env, depth))
        if isinstance(expr, App):
            return (yield from self._pe_app(expr, env, depth))
        raise PEError(f"unknown expression node {expr!r}")

    def _pe_prim(self, expr: Prim, env: Mapping[str, _Binding],
                 depth: int):
        residual_args = []
        vectors = []
        for arg in expr.args:
            arg_expr, arg_vector = yield self._pe(arg, env, depth)
            residual_args.append(arg_expr)
            vectors.append(arg_vector)
        outcome = self.suite.apply_prim(expr.op, vectors)
        self.stats.facet_evaluations += outcome.facet_evaluations
        self.stats.decisions += 1
        if outcome.folded:
            self.stats.record_fold(outcome.producer or "pe")
            constant = outcome.vector.pe.constant()
            return Const(constant), outcome.vector
        self.budget.charge_nodes()
        return Prim(expr.op, tuple(residual_args)), outcome.vector

    def _pe_if(self, expr: If, env: Mapping[str, _Binding],
               depth: int):
        test_expr, test_vector = yield self._pe(expr.test, env, depth)
        self.stats.decisions += 1
        if isinstance(test_expr, Const) \
                and isinstance(test_expr.value, bool):
            self.stats.if_reductions += 1
            branch = expr.then if test_expr.value else expr.else_
            return (yield self._pe(branch, env, depth))
        then_env = else_env = env
        if self.config.propagate_constraints:
            then_env = self._constrained(env, test_expr, assume=True)
            else_env = self._constrained(env, test_expr, assume=False)
        then_expr, then_vector = yield self._pe(expr.then, then_env,
                                                depth)
        else_expr, else_vector = yield self._pe(expr.else_, else_env,
                                                depth)
        joined = self.suite.join(then_vector, else_vector)
        self.budget.charge_nodes()
        return If(test_expr, then_expr, else_expr), joined

    def _constrained(self, env: Mapping[str, _Binding], test: Expr,
                     assume: bool) -> Mapping[str, _Binding]:
        """The Section 4.4 extension: refine the facet values of
        variables the residual test talks about, under the branch's
        truth assumption (see :mod:`repro.online.constraints`)."""
        from repro.online.constraints import refine_branch_bindings
        lookup: dict[str, FacetVector] = {}
        holders: dict[str, list[str]] = {}
        for name, binding in env.items():
            if isinstance(binding.expr, Var):
                residual = binding.expr.name
                lookup.setdefault(residual, binding.vector)
                holders.setdefault(residual, []).append(name)
        refined = refine_branch_bindings(self.suite, test, lookup,
                                         assume)
        if not refined:
            return env
        updated = dict(env)
        for residual, vector in refined.items():
            expr: Expr = Var(residual)
            if vector.pe.is_const:
                # An assumed equality pinned the variable to a constant.
                expr = Const(vector.pe.constant())
            for name in holders.get(residual, ()):
                updated[name] = _Binding(expr, vector)
        self.stats.constraint_refinements += len(refined)
        return updated

    def _pe_let(self, expr: Let, env: Mapping[str, _Binding],
                depth: int):
        bound_expr, bound_vector = yield self._pe(expr.bound, env, depth)
        if isinstance(bound_expr, (Const, Var)):
            inner = dict(env)
            inner[expr.name] = _Binding(bound_expr, bound_vector)
            return (yield self._pe(expr.body, inner, depth))
        fresh = self._fresh(expr.name)
        inner = dict(env)
        inner[expr.name] = _Binding(Var(fresh), bound_vector)
        body_expr, body_vector = yield self._pe(expr.body, inner, depth)
        if count_occurrences(body_expr, fresh) == 0 \
                and definitely_total(bound_expr):
            return body_expr, body_vector
        self.budget.charge_nodes()
        return Let(fresh, bound_expr, body_expr), body_vector

    # -- APP: unfold or specialize -----------------------------------------
    def _pe_call(self, fn: str, args: Sequence[Expr],
                 env: Mapping[str, _Binding],
                 depth: int):
        fundef = self.functions.get(fn)
        if fundef is None:
            raise PEError(f"call to unknown function {fn!r}")
        residual_args = []
        vectors = []
        for arg in args:
            arg_expr, arg_vector = yield self._pe(arg, env, depth)
            residual_args.append(arg_expr)
            vectors.append(arg_vector)
        self.stats.decisions += 1
        return (yield self._apply(fundef, residual_args, vectors,
                                  depth))

    def _apply(self, fundef: FunDef, residual_args: Sequence[Expr],
               vectors: Sequence[FacetVector], depth: int):
        """The unfold-or-specialize decision, with budget governance:
        an exhausted budget widens the call to Dynamic and emits a
        residual call; an unfold-depth cap refuses the unfold but keeps
        the precise specialization."""
        reason = self.budget.exhausted
        if reason is not None:
            self._degrade(fundef.name, reason, depth, "widened-call")
            return (yield self._specialize_call(
                fundef, residual_args, vectors, depth, widen=True))
        if self._should_unfold(vectors, residual_args, depth):
            if self.budget.blocks_unfold(depth):
                self._degrade(fundef.name, "unfold_depth", depth,
                              "residual-call")
            else:
                self.stats.unfoldings += 1
                return (yield self._unfold(fundef, residual_args,
                                           vectors, depth + 1))
        return (yield self._specialize_call(fundef, residual_args,
                                            vectors, depth))

    def _should_unfold(self, vectors: Sequence[FacetVector],
                       residual_args: Sequence[Expr],
                       depth: int) -> bool:
        strategy = self.config.unfold_strategy
        if strategy is UnfoldStrategy.NEVER:
            return False
        if depth >= self.config.unfold_fuel:
            return False
        if strategy is UnfoldStrategy.ALWAYS:
            return True
        if any(self._informative(vector) for vector in vectors):
            return True
        # A lambda-valued argument is static information the facet
        # vectors cannot see: unfold so the closure reaches its
        # application sites and beta-reduces.
        return any(isinstance(arg, Lam) for arg in residual_args)

    def _informative(self, vector: FacetVector) -> bool:
        """Does specializing on this argument stand to gain anything?"""
        if vector.pe.is_const:
            return True
        facets = self.suite.facets_for(vector.sort)
        return any(not facet.domain.leq(facet.domain.top, component)
                   for facet, component in zip(facets, vector.user))

    def _unfold(self, fundef: FunDef, residual_args: Sequence[Expr],
                vectors: Sequence[FacetVector],
                depth: int):
        """Unfold a call: specialize the body in an environment binding
        parameters to the residual arguments.  Compound arguments whose
        parameter occurs more than once are let-bound to avoid
        duplicating residual work."""
        env: dict[str, _Binding] = {}
        lets: list[tuple[str, Expr]] = []
        for param, arg_expr, vector in zip(fundef.params, residual_args,
                                           vectors):
            trivial = isinstance(arg_expr, (Const, Var))
            if trivial or count_occurrences(fundef.body, param) <= 1:
                env[param] = _Binding(arg_expr, vector)
            else:
                fresh = self._fresh(param)
                lets.append((fresh, arg_expr))
                env[param] = _Binding(Var(fresh), vector)
        body_expr, body_vector = yield self._pe(fundef.body, env, depth)
        for fresh, bound in reversed(lets):
            if count_occurrences(body_expr, fresh) == 0 \
                    and definitely_total(bound):
                continue
            self.budget.charge_nodes()
            body_expr = Let(fresh, bound, body_expr)
        return body_expr, body_vector

    def _specialize_call(self, fundef: FunDef,
                         residual_args: Sequence[Expr],
                         vectors: Sequence[FacetVector],
                         depth: int, widen: bool = False):
        if widen:
            # Budget-forced widening: collapse the call onto the fully
            # generic variant of the callee (rung 2 of the ladder), so
            # at most one new residual function per source function can
            # still be created, no matter how wild the call patterns.
            rung = 2
        else:
            rung = self._generalization_rung(fundef.name)
        if rung:
            self.stats.generalizations += 1
            vectors = [self._generalize_vector(v, rung) for v in vectors]
        key = make_key(self.suite, fundef.name, vectors, rung)
        positions = dynamic_positions(vectors, rung)
        entry = self.cache.lookup(key)
        if entry is None:
            entry = self.cache.register(
                key, fundef.name, positions,
                tuple(fundef.params[i] for i in positions))
            self.stats.specializations += 1
            env: dict[str, _Binding] = {}
            for i, (param, vector) in enumerate(
                    zip(fundef.params, vectors)):
                if i in positions:
                    env[param] = _Binding(Var(param), vector)
                else:
                    env[param] = _Binding(
                        Const(vector.pe.constant()), vector)
            # Fresh unfold budget: termination now rests on the cache.
            body_expr, _ = yield self._pe(fundef.body, env, depth=0)
            self.cache.finish(
                entry, FunDef(entry.name, entry.params, body_expr))
        else:
            self.stats.cache_hits += 1
        call_args = tuple(residual_args[i]
                          for i in entry.dynamic_positions)
        self.budget.charge_nodes()
        return Call(entry.name, call_args), self.suite.unknown(None)

    def _generalization_rung(self, fn: str) -> int:
        variants = self.cache.variants_of(fn)
        if variants >= 2 * self.config.max_variants:
            return 2
        if variants >= self.config.max_variants:
            return 1
        return 0

    def _generalize_vector(self, vector: FacetVector,
                           rung: int) -> FacetVector:
        if rung >= 2:
            return self.suite.unknown(vector.sort)
        if vector.pe.is_const:
            return vector
        return self.suite.unknown(vector.sort)

    # -- higher-order forms -------------------------------------------------
    def _pe_lambda(self, expr: Lam, env: Mapping[str, _Binding],
                   depth: int):
        """Specialize under the lambda with dynamic parameters; free
        variables keep their bindings (they may be static)."""
        inner = dict(env)
        renamed = []
        for param in expr.params:
            fresh = self._fresh(param)
            renamed.append(fresh)
            inner[param] = _Binding(Var(fresh), self.suite.unknown(None))
        body_expr, _ = yield self._pe(expr.body, inner, depth)
        self.budget.charge_nodes()
        return Lam(tuple(renamed), body_expr), self.suite.unknown(None)

    def _pe_app(self, expr: App, env: Mapping[str, _Binding],
                depth: int):
        fn_expr, _ = yield self._pe(expr.fn, env, depth)
        residual_args = []
        vectors = []
        for arg in expr.args:
            arg_expr, arg_vector = yield self._pe(arg, env, depth)
            residual_args.append(arg_expr)
            vectors.append(arg_vector)
        self.stats.decisions += 1
        if isinstance(fn_expr, Lam) and depth < self.config.unfold_fuel:
            reason = self.budget.exhausted
            if reason is None and self.budget.blocks_unfold(depth):
                reason = "unfold_depth"
            if reason is not None:
                # Beta-reduction is an unfold too: refuse it under
                # budget pressure and emit the application residually.
                self._degrade("<lambda>", reason, depth,
                              "residual-call")
            else:
                self.stats.unfoldings += 1
                fundef = FunDef("<lambda>", fn_expr.params, fn_expr.body)
                return (yield self._unfold(fundef, residual_args,
                                           vectors, depth + 1))
        if isinstance(fn_expr, Var) and fn_expr.name in self.functions \
                and fn_expr.name not in env:
            fundef = self.functions[fn_expr.name]
            return (yield self._apply(fundef, residual_args, vectors,
                                      depth))
        self.budget.charge_nodes()
        return (App(fn_expr, tuple(residual_args)),
                self.suite.unknown(None))

    # -- plumbing -------------------------------------------------------------
    def _fresh(self, base: str) -> str:
        self._gensym += 1
        return f"{base}!{self._gensym}"

    def _degrade(self, site: str, reason: str, depth: int,
                 action: str) -> None:
        """Record a graceful-degradation decision (or raise, under
        strict enforcement)."""
        if self.config.strict_budgets:
            raise BudgetExhausted(
                f"budget exceeded ({reason}) at {site!r}; "
                f"strict_budgets=True turns degradation into an error",
                dimension=reason,
                limit=self.budget.limits().get(reason),
                used=self.budget.used().get(reason))
        self.stats.record_degrade(DegradeEvent(
            site=site, reason=reason, action=action, depth=depth,
            step=self.stats.steps))

    def _tick(self) -> None:
        steps = self.stats.steps = self.stats.steps + 1
        if steps > self.config.fuel:
            raise BudgetExhausted(
                f"partial evaluation exceeded {self.config.fuel} steps; "
                f"a static loop in the subject program may diverge",
                dimension="fuel", limit=self.config.fuel,
                used=self.stats.steps)
        if self.budget.limited and steps & (STEP_STRIDE - 1) == 0:
            self.budget.charge_steps(steps)


def specialize_online(program: Program,
                      inputs: Sequence[FacetVector | Value],
                      suite: FacetSuite | None = None,
                      config: PEConfig | None = None) \
        -> SpecializationResult:
    """One-shot online parameterized partial evaluation."""
    return OnlineSpecializer(program, suite, config).specialize(inputs)
