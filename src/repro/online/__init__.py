"""Online parameterized partial evaluation (Section 4, Figure 3)."""

from repro.online.cache import (
    DYNAMIC, ResidualFunction, SpecCache, dynamic_positions, make_key)
from repro.online.config import PEConfig, PEStats, UnfoldStrategy
from repro.online.specializer import (
    OnlineSpecializer, SpecializationResult, specialize_online)

__all__ = [
    "DYNAMIC", "ResidualFunction", "SpecCache", "dynamic_positions",
    "make_key",
    "PEConfig", "PEStats", "UnfoldStrategy",
    "OnlineSpecializer", "SpecializationResult", "specialize_online",
]
