"""Configuration and statistics shared by the specializers.

The paper abstracts the treatment of calls behind ``APP`` ("because this
treatment vastly differs from one partial evaluator to another").  Our
``APP`` is the classic unfold-or-specialize strategy with three
termination guards, all tunable here:

* ``unfold_fuel`` bounds the depth of nested unfoldings along one call
  chain; past it, calls are specialized through the cache;
* ``max_variants`` bounds the number of cached specializations per
  source function; past it, keys are *generalized* (facet components to
  top first, then constants to dynamic), which restores termination on
  static data that grows under recursion;
* ``fuel`` bounds total PE work, turning a diverging *static* loop in
  the subject program into a catchable error.

``PEStats`` — the decision-cost instrumentation behind
``benchmarks/bench_decisions.py`` — now lives in
:mod:`repro.observability.stats` and is re-exported here for
compatibility: the online specializer pays ``facet_evaluations`` at
every primitive, the offline one only where the facet analysis said a
facet is needed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.observability.stats import PEStats

__all__ = ["PEConfig", "PEStats", "UnfoldStrategy"]


class UnfoldStrategy(enum.Enum):
    """When should a call be unfolded rather than specialized?"""

    #: Unfold while any argument carries information (a constant or a
    #: non-top facet component); the default, and what the paper's
    #: inner-product walk-through needs.
    STATIC_ARGS = "static-args"
    #: Always unfold until the fuel runs out.
    ALWAYS = "always"
    #: Never unfold; every call goes through the specialization cache.
    NEVER = "never"


@dataclass(frozen=True)
class PEConfig:
    """Tunables of both specializers."""

    unfold_strategy: UnfoldStrategy = UnfoldStrategy.STATIC_ARGS
    unfold_fuel: int = 400
    max_variants: int = 64
    fuel: int = 2_000_000
    #: Run the algebraic cleanup of :mod:`repro.transform.simplify` on
    #: the residual program (needed to match Figure 8 exactly).
    simplify: bool = True
    #: Rename generated functions to readable ``f_1`` style and drop
    #: unreachable definitions.
    tidy: bool = True
    #: Offline only: residualize (instead of raising) when a spec-time
    #: input does not match the analyzed pattern.
    lenient: bool = False
    #: Online extension (the paper's Section 4.4 future work, Redfun's
    #: behaviour): propagate a residual test's constraint — and its
    #: negation — into the consequent/alternative branches, refining
    #: the facet values of the variables it mentions.
    propagate_constraints: bool = False
