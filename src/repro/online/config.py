"""Configuration and statistics shared by the specializers.

The paper abstracts the treatment of calls behind ``APP`` ("because this
treatment vastly differs from one partial evaluator to another").  Our
``APP`` is the classic unfold-or-specialize strategy with three
termination guards, all tunable here:

* ``unfold_fuel`` bounds the depth of nested unfoldings along one call
  chain; past it, calls are specialized through the cache;
* ``max_variants`` bounds the number of cached specializations per
  source function; past it, keys are *generalized* (facet components to
  top first, then constants to dynamic), which restores termination on
  static data that grows under recursion;
* ``fuel`` bounds total PE work, turning a diverging *static* loop in
  the subject program into a catchable error.

On top of the guards sit the *soft budgets* of
:mod:`repro.engine.budget` (``max_steps`` / ``max_unfold_depth`` /
``max_residual_nodes`` / ``max_wall_seconds``).  Crossing a soft budget
never raises by default: the engine widens the offending call to
Dynamic, emits a residual call instead of unfolding further, records a
:class:`~repro.engine.budget.DegradeEvent` and keeps going — a correct
but less-specialized residual instead of a crash.
``strict_budgets=True`` turns exhaustion into a
:class:`~repro.engine.errors.BudgetExhausted` instead; ``fuel`` stays
as the hard backstop behind everything and always raises.

``PEStats`` — the decision-cost instrumentation behind
``benchmarks/bench_decisions.py`` — now lives in
:mod:`repro.observability.stats` and is re-exported here for
compatibility: the online specializer pays ``facet_evaluations`` at
every primitive, the offline one only where the facet analysis said a
facet is needed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.engine.budget import Budget
from repro.observability.stats import PEStats

__all__ = ["PEConfig", "PEStats", "UnfoldStrategy"]


class UnfoldStrategy(enum.Enum):
    """When should a call be unfolded rather than specialized?"""

    #: Unfold while any argument carries information (a constant or a
    #: non-top facet component); the default, and what the paper's
    #: inner-product walk-through needs.
    STATIC_ARGS = "static-args"
    #: Always unfold until the fuel runs out.
    ALWAYS = "always"
    #: Never unfold; every call goes through the specialization cache.
    NEVER = "never"


@dataclass(frozen=True)
class PEConfig:
    """Tunables of both specializers."""

    unfold_strategy: UnfoldStrategy = UnfoldStrategy.STATIC_ARGS
    unfold_fuel: int = 400
    max_variants: int = 64
    fuel: int = 2_000_000
    #: Run the algebraic cleanup of :mod:`repro.transform.simplify` on
    #: the residual program (needed to match Figure 8 exactly).
    simplify: bool = True
    #: Rename generated functions to readable ``f_1`` style and drop
    #: unreachable definitions.
    tidy: bool = True
    #: Offline only: residualize (instead of raising) when a spec-time
    #: input does not match the analyzed pattern.
    lenient: bool = False
    #: Online extension (the paper's Section 4.4 future work, Redfun's
    #: behaviour): propagate a residual test's constraint — and its
    #: negation — into the consequent/alternative branches, refining
    #: the facet values of the variables it mentions.
    propagate_constraints: bool = False

    # -- resource governance (repro.engine.budget) ---------------------
    #: Soft PE-step budget; past it the engine stops unfolding and
    #: widens every further call to Dynamic instead of raising.
    #: ``None`` disables the dimension.  The default is far above any
    #: legitimate workload in the repo but finite, so known-divergent
    #: programs terminate with a degraded residual out of the box.
    max_steps: int | None = 1_000_000
    #: Soft cap on residual AST nodes built before widening kicks in.
    max_residual_nodes: int | None = 250_000
    #: Visible unfold-depth cap: unlike ``unfold_fuel`` (a silent
    #: strategy bound), crossing it records a DegradeEvent.
    max_unfold_depth: int | None = None
    #: Soft wall-clock budget in seconds (sampled every
    #: :data:`repro.engine.budget.STEP_STRIDE` steps).  The service
    #: maps per-request deadlines here so the engine degrades
    #: cooperatively before the worker is killed.
    max_wall_seconds: float | None = None
    #: Raise :class:`~repro.engine.errors.BudgetExhausted` on soft
    #: budget exhaustion instead of degrading gracefully.
    strict_budgets: bool = False

    def make_budget(self) -> Budget:
        """A fresh meter for one specializer instance."""
        return Budget(max_steps=self.max_steps,
                      max_unfold_depth=self.max_unfold_depth,
                      max_residual_nodes=self.max_residual_nodes,
                      max_wall_seconds=self.max_wall_seconds)
