"""Fused generating extensions: cogen emitted as native Python.

``emit_genext(source, specs, suite, config)`` analyzes the program
once under a generalized division and emits a standalone Python module
whose ``specialize(inputs)`` reproduces
:class:`repro.offline.cogen.GeneratingExtension` byte-for-byte while
skipping annotation dispatch, environment dictionaries and the
per-unfold AST walks; ``specialize_compiled`` feeds the residual AST
straight into :mod:`repro.backend` without the pretty-print → re-parse
round trip.  ``load_genext`` executes an emitted module (possibly read
back from the artifact store's ``genext`` kind).  See
:mod:`repro.genext.emit` and :mod:`repro.genext.runtime`.
"""

from repro.genext.emit import (
    EmittedGenext, canonical_spec, default_suite, emit_genext,
    generalized_pattern, genext_store_key, load_genext)
from repro.genext.runtime import (
    GENEXT_PROTOCOL, GenextRuntime, facet_name_of, facet_from_name,
    suite_from_names)

__all__ = [
    "EmittedGenext",
    "GENEXT_PROTOCOL",
    "GenextRuntime",
    "canonical_spec",
    "default_suite",
    "emit_genext",
    "facet_from_name",
    "facet_name_of",
    "generalized_pattern",
    "genext_store_key",
    "load_genext",
    "suite_from_names",
]
