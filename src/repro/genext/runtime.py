"""Runtime library of *emitted* generating extensions.

An emitted genext module (see :mod:`repro.genext.emit`) is flat Python:
one function per subject-program function whose body is the sequence of
specialization decisions the facet analysis licensed, with every
annotation lookup, environment dictionary and closure-tree dispatch of
:class:`repro.offline.cogen.GeneratingExtension` compiled away.  What
cannot be decided at emission time — folding a primitive whose
arguments turn out residual, the unfold-or-specialize choice at a call,
the facet join at a dynamic conditional — is delegated to the helpers
in this module, which mirror the cogen closures *operation by
operation* so the residual programs (names, gensym order, statistics)
stay byte-identical to both :class:`~repro.offline.cogen.
GeneratingExtension` and :class:`~repro.offline.specializer.
OfflineSpecializer`.

The module-level protocol: the emitted module builds a
:class:`GenextRuntime` from its baked manifest (facet-suite layout,
engine config, generalized input pattern, per-function needed-facet
sets and parameter occurrence counts) plus its emitted decision
functions, and re-exports :meth:`GenextRuntime.specialize`.  Importing
a genext performs **no parsing and no facet analysis** of the subject
program — that is the amortization the service's ``genext`` engine
buys: analysis cost is paid once per ``(source, config)``, not per
spec vector.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.lang.ast import (
    Call, Const, Expr, FunDef, If, Let, Prim, Var, count_occurrences)
from repro.lang.errors import EvalError, PEError
from repro.lang.primitives import apply_primitive, fold_would_blow_up
from repro.lang.program import Program
from repro.lang.values import Value, Vector, is_value
from repro.lattice.pevalue import PEValue
from repro.facets import (
    ConstSetFacet, FacetSuite, FacetVector, IntervalFacet, ParityFacet,
    SignFacet, VectorSizeFacet)
from repro.facets.abstract.vector import AbstractSuite, AbstractVector
from repro.offline.cogen import GenExtResult
from repro.online.cache import SpecCache, dynamic_positions, make_key
from repro.online.config import PEConfig, PEStats, UnfoldStrategy
from repro.transform.cleanup import canonical_names, drop_unreachable
from repro.transform.simplify import definitely_total, simplify_program

#: Mirrors :data:`repro.offline.cogen._RECURSION_LIMIT`.
_RECURSION_LIMIT = 100_000

#: Bumped when the emitted-module protocol changes; a persisted genext
#: with a different version fails to bind and is re-emitted.
GENEXT_PROTOCOL = 1

#: Non-finite float literals, referenced by name from emitted modules.
_inf = float("inf")
_nan = float("nan")


def _vec(items: Sequence[float | None]) -> Vector:
    """Vector literals in emitted const cells (holes stay ``None``)."""
    return Vector(tuple(items))


# -- suite reconstruction --------------------------------------------------

def facet_name_of(facet: object) -> str:
    """The wire name of a shipped facet; :class:`PEError` for facets
    the emitted-module manifest cannot describe."""
    if isinstance(facet, ConstSetFacet):
        from repro.facets.library.constset import DEFAULT_LIMIT
        limit = facet.domain.limit
        return ("constset" if limit == DEFAULT_LIMIT
                else f"constset<={limit}")
    name = getattr(facet, "name", None)
    if name is None or facet_from_name(str(name), probe=True) is None:
        raise PEError(
            f"cannot emit a generating extension over facet "
            f"{facet!r}: only the shipped facets "
            f"(sign/parity/interval/size/constset) have a stable "
            f"wire name")
    return str(name)


def facet_from_name(name: str, probe: bool = False):
    """Rebuild a shipped facet from its wire name (``None`` when
    probing an unknown name)."""
    if name == "sign":
        return SignFacet()
    if name == "parity":
        return ParityFacet()
    if name == "interval":
        return IntervalFacet()
    if name == "size":
        return VectorSizeFacet()
    if name == "constset":
        return ConstSetFacet()
    if name.startswith("constset<="):
        try:
            return ConstSetFacet(int(name[len("constset<="):]))
        except ValueError:
            pass
    if probe:
        return None
    raise PEError(f"unknown facet name {name!r} in genext manifest")


def suite_from_names(names: Sequence[str]) -> FacetSuite:
    return FacetSuite([facet_from_name(name) for name in names])


def pattern_vector(descriptor: Mapping[str, Any],
                   online: FacetSuite,
                   abstract: AbstractSuite) -> AbstractVector:
    """One analyzed input from its manifest descriptor (see
    :func:`repro.genext.emit.generalized_pattern`)."""
    kind = descriptor.get("kind")
    if kind == "dyn":
        return abstract.dynamic(None)
    if kind == "static":
        return abstract.static(descriptor.get("sort"))
    if kind == "spec":
        from repro.service.specs import parse_spec
        vector = parse_spec(online, str(descriptor["text"]))
        if is_value(vector):
            return abstract.static(descriptor.get("sort"))
        return abstract.abstract_of_online(vector)
    raise PEError(f"unknown pattern descriptor {descriptor!r}")


# -- per-specialization state ----------------------------------------------

@dataclass
class Ctx:
    """Per-specialization mutable state; mirrors
    :class:`repro.offline.cogen._Ctx` field for field so gensym
    numbering — and with it residual text — is identical."""

    cache: SpecCache
    stats: PEStats
    depth: int = 0
    gensym: int = 0

    def fresh(self, base: str) -> str:
        self.gensym += 1
        return f"{base}!{self.gensym}"


class FunctionProfile:
    """Everything the runtime knows about one subject function: its
    emitted decision body, the analysis' needed-facet set (as
    precomputed per-sort restriction masks) and baked parameter
    occurrence counts (what cogen recomputes by AST walk per unfold)."""

    __slots__ = ("name", "params", "arity", "needed", "occurrences",
                 "body", "rt", "_masks")

    def __init__(self, rt: "GenextRuntime", name: str,
                 params: Sequence[str], needed: Sequence[str],
                 occurrences: Mapping[str, int]) -> None:
        self.rt = rt
        self.name = name
        self.params = tuple(params)
        self.arity = len(self.params)
        self.needed = frozenset(needed)
        self.occurrences = dict(occurrences)
        self.body: Callable[..., tuple[Expr, FacetVector]] | None = None
        self._masks: dict[str | None, tuple[bool, ...] | None] = {}

    def restrict(self, vector: FacetVector) -> FacetVector:
        """``GeneratingExtension._restrict`` with the per-sort
        needed-mask precomputed once instead of two set probes per
        facet per call."""
        sort = vector.sort
        try:
            mask = self._masks[sort]
        except KeyError:
            facets = self.rt.online.facets_for(sort)
            keep = tuple(facet.name in self.needed for facet in facets)
            mask = None if all(keep) else keep
            self._masks[sort] = mask
        if mask is None:
            return vector
        suite = self.rt.online
        facets = suite.facets_for(sort)
        user = tuple(
            component if kept else facet.domain.top
            for kept, facet, component
            in zip(mask, facets, vector.user))
        return suite.make_vector(sort, vector.pe, user)


class GenextRuntime:
    """The bound state of one emitted genext module."""

    def __init__(self, manifest: Mapping[str, Any],
                 functions: Mapping[str, Callable]) -> None:
        if manifest.get("protocol") != GENEXT_PROTOCOL:
            raise PEError(
                f"genext protocol {manifest.get('protocol')!r} != "
                f"{GENEXT_PROTOCOL}; re-emit the module")
        self.manifest = dict(manifest)
        self.online = suite_from_names(manifest["facets"])
        self.abstract = AbstractSuite(self.online)
        from repro.service.results import _decode_config_value
        self.config = PEConfig(**{
            name: _decode_config_value(name, value)
            for name, value in dict(manifest.get("config") or {}).items()})
        self.pattern = tuple(
            pattern_vector(d, self.online, self.abstract)
            for d in manifest["pattern"])
        self._facets = {facet.name: facet
                        for facet in self.online.facets}
        self.profiles: dict[str, FunctionProfile] = {}
        self._order: list[str] = []
        for entry in manifest["functions"]:
            profile = FunctionProfile(
                self, entry["name"], entry["params"],
                entry.get("needed", ()), entry.get("occurrences", {}))
            profile.body = functions[entry["name"]]
            self.profiles[entry["name"]] = profile
            self._order.append(entry["name"])
        self.main = self.profiles[manifest["main"]]

    # -- module-level cells -------------------------------------------
    def profile(self, name: str) -> FunctionProfile:
        return self.profiles[name]

    def facet(self, name: str | None):
        if name is None:
            return None
        return self._facets.get(name)

    def const_pair(self, fn: str, value: Value) \
            -> tuple[Expr, FacetVector]:
        """A baked constant cell: the pair cogen computes once at
        closure-compilation time."""
        profile = self.profiles[fn]
        return (Const(value),
                profile.restrict(self.online.const_vector(value)))

    # -- driving -------------------------------------------------------
    def specialize(self, inputs: Sequence[FacetVector | Value]) \
            -> GenExtResult:
        """Mirror of :meth:`GeneratingExtension.specialize`."""
        main = self.main
        if len(inputs) != main.arity:
            raise PEError(
                f"{main.name}: expected {main.arity} inputs, "
                f"got {len(inputs)}")
        suite = self.online
        vectors = [suite.const_vector(value) if is_value(value)
                   else value for value in inputs]
        self._check_pattern(vectors)
        pairs: list[tuple[Expr, FacetVector]] = []
        goal_params = []
        for param, vector in zip(main.params, vectors):
            vector = main.restrict(vector)
            if vector.pe.is_const:
                pairs.append((Const(vector.pe.constant()), vector))
            else:
                pairs.append((Var(param), vector))
                goal_params.append(param)
        ctx = Ctx(SpecCache(reserved_names=list(self._order)),
                  PEStats())
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, _RECURSION_LIMIT))
        try:
            body, _ = main.body(ctx, *pairs)
        finally:
            sys.setrecursionlimit(old_limit)
        goal = FunDef(main.name, tuple(goal_params), body)
        raw = Program((goal, *ctx.cache.residual_defs()))
        cleaned = raw
        if self.config.simplify:
            cleaned = simplify_program(cleaned)
        if self.config.tidy:
            cleaned = canonical_names(drop_unreachable(cleaned))
        return GenExtResult(cleaned, raw, ctx.stats,
                            tuple(goal_params))

    def specialize_specs(self, specs: Sequence[str]) -> GenExtResult:
        """Convenience: parse spec strings against the baked suite."""
        from repro.service.specs import parse_specs
        return self.specialize(parse_specs(self.online, specs))

    def specialize_compiled(self,
                            inputs: Sequence[FacetVector | Value]):
        """The fused hot path: residual AST straight into the compiled
        backend, skipping the pretty-print → re-parse round trip the
        service scheduler pays for other engines.  Returns
        ``(result, compiled)``."""
        from repro.backend import compile_program
        result = self.specialize(inputs)
        return result, compile_program(result.program)

    def _check_pattern(self, vectors: Sequence[FacetVector]) -> None:
        if self.config.lenient:
            return
        abstract = [self.abstract.abstract_of_online(v)
                    for v in vectors]
        for i, (given, analyzed) in enumerate(
                zip(abstract, self.pattern)):
            if not self.abstract.leq(given, analyzed):
                raise PEError(
                    f"input {i} ({given}) does not match the analyzed "
                    f"pattern ({analyzed}); rerun the facet analysis "
                    f"for this division")

    def _informative(self, vector: FacetVector) -> bool:
        if vector.pe.is_const:
            return True
        facets = self.online.facets_for(vector.sort)
        return any(not facet.domain.leq(facet.domain.top, component)
                   for facet, component in zip(facets, vector.user))


# -- decision helpers called from emitted code -----------------------------

def unbound(name: str) -> tuple[Expr, FacetVector]:
    """A variable the subject program references but never binds; the
    cogen closure would raise the same ``KeyError`` from its env."""
    raise KeyError(name)


def fold(pf: FunctionProfile, ctx: Ctx, op: str,
         pairs: Sequence[tuple[Expr, FacetVector]]) \
        -> tuple[Expr, FacetVector]:
    """A FOLD-annotated primitive (cogen's ``fold`` closure)."""
    values = []
    for arg_expr, _ in pairs:
        if not isinstance(arg_expr, Const):
            # Bottom caveat: a static subexpression errored and was
            # residualized upstream.
            return residual_prim(pf, ctx, op, pairs)
        values.append(arg_expr.value)
    if fold_would_blow_up(op, values):
        return residual_prim(pf, ctx, op, pairs)
    try:
        value = apply_primitive(op, values)
    except EvalError:
        return residual_prim(pf, ctx, op, pairs)
    ctx.stats.facet_evaluations += 1
    ctx.stats.record_fold("pe")
    return (Const(value), pf.restrict(pf.rt.online.const_vector(value)))


def trigger(pf: FunctionProfile, ctx: Ctx, op: str,
            pairs: Sequence[tuple[Expr, FacetVector]], facet) \
        -> tuple[Expr, FacetVector]:
    """A TRIGGER-annotated primitive: the analysis promised ``facet``'s
    open operator yields the constant."""
    suite = pf.rt.online
    vectors = [pair[1] for pair in pairs]
    outcome = None
    if facet is not None:
        sig = suite.resolve_sig(op, vectors)
        if sig is not None:
            projected = suite.project_args(facet, sig, vectors)
            ctx.stats.facet_evaluations += 1
            outcome = facet.apply_open(op, sig, projected)
    if outcome is not None and outcome.is_const:
        ctx.stats.record_fold(facet.name)
        value = outcome.constant()
        return (Const(value),
                pf.restrict(suite.const_vector(value)))
    # Bottom caveat (see fold).
    return residual_prim(pf, ctx, op, pairs)


def residual_prim(pf: FunctionProfile, ctx: Ctx, op: str,
                  pairs: Sequence[tuple[Expr, FacetVector]]) \
        -> tuple[Expr, FacetVector]:
    """Cogen's ``_residual_prim_now``: keep the primitive residual,
    pushing closed facet operators through the needed components."""
    suite = pf.rt.online
    vectors = [pair[1] for pair in pairs]
    args = tuple(pair[0] for pair in pairs)
    sig = suite.resolve_sig(op, vectors)
    residual_expr = Prim(op, args)
    if sig is None:
        return residual_expr, suite.unknown(None)
    if any(suite.is_bottom(v) for v in vectors):
        return residual_expr, suite.bottom(sig.result_sort)
    if sig.is_closed:
        needed = pf.needed
        components = []
        for facet in suite.facets_for(sig.carrier):
            if facet.name in needed:
                projected = suite.project_args(facet, sig, vectors)
                ctx.stats.facet_evaluations += 1
                components.append(
                    facet.apply_closed(op, sig, projected))
            else:
                components.append(facet.domain.top)
        vector = suite.smash(suite.make_vector(
            sig.result_sort, PEValue.top(), tuple(components)))
        return residual_expr, vector
    return residual_expr, suite.unknown(sig.result_sort)


def build_if(pf: FunctionProfile, test_expr: Expr, then_pair,
             else_pair) -> tuple[Expr, FacetVector]:
    then_expr, then_vector = then_pair
    else_expr, else_vector = else_pair
    return (If(test_expr, then_expr, else_expr),
            pf.rt.online.join(then_vector, else_vector))


def let_exit(fresh: str, bound_expr: Expr, pair) \
        -> tuple[Expr, FacetVector]:
    """Close a residual ``let`` (cogen's ``staged_let`` exit): drop the
    binding when the body never uses it and evaluating it cannot be
    observed."""
    body_expr, body_vector = pair
    if count_occurrences(body_expr, fresh) == 0 \
            and definitely_total(bound_expr):
        return pair
    return Let(fresh, bound_expr, body_expr), body_vector


def residual_call(pf: FunctionProfile, ctx: Ctx,
                  pairs: Sequence[tuple[Expr, FacetVector]]) \
        -> tuple[Expr, FacetVector]:
    """Cogen's ``staged_call``: the unfold-or-specialize decision,
    taken against the *callee's* profile."""
    restrict = pf.restrict
    vectors = [restrict(pair[1]) for pair in pairs]
    args = [pair[0] for pair in pairs]
    ctx.stats.decisions += 1
    rt = pf.rt
    config = rt.config
    unfold = False
    if config.unfold_strategy is not UnfoldStrategy.NEVER \
            and ctx.depth < config.unfold_fuel:
        if config.unfold_strategy is UnfoldStrategy.ALWAYS:
            unfold = True
        else:
            unfold = any(rt._informative(v) for v in vectors)
    if unfold:
        ctx.stats.unfoldings += 1
        return _unfold(pf, args, vectors, ctx)
    return _specialize_call(pf, args, vectors, ctx)


def _unfold(pf: FunctionProfile, args, vectors, ctx: Ctx) \
        -> tuple[Expr, FacetVector]:
    pairs: list[tuple[Expr, FacetVector]] = []
    lets: list[tuple[str, Expr]] = []
    occurrences = pf.occurrences
    for param, arg_expr, vector in zip(pf.params, args, vectors):
        trivial = isinstance(arg_expr, (Const, Var))
        if trivial or occurrences.get(param, 0) <= 1:
            pairs.append((arg_expr, vector))
        else:
            fresh = ctx.fresh(param)
            lets.append((fresh, arg_expr))
            pairs.append((Var(fresh), vector))
    ctx.depth += 1
    try:
        body_expr, body_vector = pf.body(ctx, *pairs)
    finally:
        ctx.depth -= 1
    for fresh, bound in reversed(lets):
        if count_occurrences(body_expr, fresh) == 0 \
                and definitely_total(bound):
            continue
        body_expr = Let(fresh, bound, body_expr)
    return body_expr, body_vector


def _specialize_call(pf: FunctionProfile, args, vectors, ctx: Ctx) \
        -> tuple[Expr, FacetVector]:
    rt = pf.rt
    suite = rt.online
    config = rt.config
    variants = ctx.cache.variants_of(pf.name)
    rung = 0
    if variants >= 2 * config.max_variants:
        if not config.lenient:
            raise PEError(
                f"{pf.name}: too many specialization "
                f"variants; re-analyze with a generalized "
                f"division or set PEConfig(lenient=True)")
        rung = 2
        ctx.stats.generalizations += 1
        vectors = [suite.unknown(v.sort) for v in vectors]
    elif variants >= config.max_variants:
        rung = 1
        ctx.stats.generalizations += 1
        vectors = [suite.unknown(v.sort) if not v.pe.is_const
                   else v for v in vectors]
    key = make_key(suite, pf.name, vectors, rung)
    positions = dynamic_positions(vectors, rung)
    entry = ctx.cache.lookup(key)
    if entry is None:
        entry = ctx.cache.register(
            key, pf.name, positions,
            tuple(pf.params[i] for i in positions))
        ctx.stats.specializations += 1
        pairs: list[tuple[Expr, FacetVector]] = []
        for i, (param, vector) in enumerate(zip(pf.params, vectors)):
            if i in positions:
                pairs.append((Var(param), vector))
            else:
                pairs.append((Const(vector.pe.constant()), vector))
        saved_depth = ctx.depth
        ctx.depth = 0
        try:
            body_expr, _ = pf.body(ctx, *pairs)
        finally:
            ctx.depth = saved_depth
        ctx.cache.finish(
            entry, FunDef(entry.name, entry.params, body_expr))
    else:
        ctx.stats.cache_hits += 1
    call_args = tuple(args[i] for i in entry.dynamic_positions)
    return Call(entry.name, call_args), suite.unknown(None)
