"""Emit a generating extension as a standalone Python module.

:class:`~repro.offline.cogen.GeneratingExtension` stages the annotated
program into a tree of Python *closures*; this module goes one step
further down the Futamura ladder and stages it into Python *source*:
flat decision functions, one per subject-program function, with

* every annotation dispatch resolved at emission time (a FOLD prim is
  a ``fold(...)`` call, a static conditional is an ``if`` over the
  staged test — there is no annotation table left to consult),
* constant cells, facet handles and per-function profiles precomputed
  at module import,
* the per-unfold ``count_occurrences`` AST walks of cogen replaced by
  occurrence counts baked into the profile at emission time, and
* no environment dictionaries: the subject program's variables become
  Python locals/parameters of the emitted decision functions.

The emitted module is *self-contained up to the repro package*: it
rebuilds its facet suite, engine config and analyzed input pattern
from an inline manifest, so it can be persisted (the ``genext``
artifact kind in :mod:`repro.store`), shipped, and imported in another
process without re-parsing or re-analyzing the subject program.  Its
``specialize(inputs)`` is drop-in for
:meth:`GeneratingExtension.specialize` and produces byte-identical
residual programs (the test suite pins this against both cogen and the
unstaged offline specializer).

Division generalization: the module is keyed by ``(source, config)``
with the *specs excluded*, so one emitted genext must serve every spec
vector of its pattern class.  Literal specs therefore generalize to
"fully static of this sort" and facet specs to their abstract image —
:func:`generalized_pattern` computes the analyzed pattern, a
serializable descriptor list (for the manifest) and a pattern
fingerprint (distinct pattern classes of one program coexist as
separate entries in the same store row).

Code-size discipline: a *static* conditional needs its branches in two
contexts (the reduced path and the residual fallback the bottom caveat
forces), so branches are hoisted into shared module-level functions —
nested static tests emit linear, not exponential, code.
"""

from __future__ import annotations

import hashlib
import json
import pprint
import types
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.lang.ast import (
    Call, Const, Expr, FunDef, If, Let, Prim, Var, count_occurrences,
    free_vars)
from repro.lang.errors import PEError
from repro.lang.parser import parse_program
from repro.lang.values import Vector
from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.facets.abstract.vector import AbstractSuite, AbstractVector
from repro.offline.analysis import (
    AnalysisResult, FOLD, IfAnnotation, PrimAnnotation, TRIGGER,
    analyze)
from repro.genext.runtime import GENEXT_PROTOCOL, facet_name_of

_INF = float("inf")


def default_suite() -> FacetSuite:
    """The facet suite the service workers use (kept in sync with
    :func:`repro.service.worker.default_suite`)."""
    return FacetSuite([SignFacet(), ParityFacet(), IntervalFacet(),
                       VectorSizeFacet()])


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def canonical_spec(text: str) -> str:
    """Order- and whitespace-insensitive form of one spec string."""
    text = str(text).strip()
    if "=" not in text:
        return text
    return ",".join(sorted(part.strip() for part in text.split(",")))


def generalized_pattern(suite: FacetSuite, abstract: AbstractSuite,
                        specs: Sequence[str]) \
        -> tuple[tuple[AbstractVector, ...], list[dict], str]:
    """The division an emitted genext is analyzed under.

    Returns ``(pattern, descriptors, fingerprint)``: the abstract
    input vectors for the facet analysis, a JSON-serializable
    descriptor per input from which :func:`repro.genext.runtime.
    pattern_vector` rebuilds the same vectors, and a fingerprint
    identifying the pattern *class* — every literal of a sort maps to
    the same class ("fully static"), every facet spec to its abstract
    image (``size=3`` and ``size=7`` coincide, ``interval=1:9`` and
    ``interval=2:8`` do not).
    """
    from repro.service.specs import parse_spec, parse_value
    pattern: list[AbstractVector] = []
    descriptors: list[dict] = []
    parts: list[list] = []
    for text in specs:
        spec = canonical_spec(text)
        if spec == "dyn":
            pattern.append(abstract.dynamic(None))
            descriptors.append({"kind": "dyn"})
            parts.append(["dyn"])
        elif "=" in spec:
            vector = parse_spec(suite, spec)
            image = abstract.abstract_of_online(vector)
            pattern.append(image)
            descriptors.append({"kind": "spec", "text": spec})
            parts.append(["abstract", image.sort, str(image)])
        else:
            value = parse_value(spec)
            sort = suite.const_vector(value).sort
            pattern.append(abstract.static(sort))
            descriptors.append({"kind": "static", "sort": sort})
            parts.append(["static", sort])
    fingerprint = _sha256(_canonical(parts))
    return tuple(pattern), descriptors, fingerprint


def genext_store_key(source_sha256: str,
                     config: Mapping[str, Any] | None,
                     facets: Sequence[str]) -> str:
    """The store row key of one program's genext bundle: source and
    engine config — *specs excluded*, that is the amortization."""
    return _sha256(_canonical({
        "kind": "genext",
        "source": source_sha256,
        "config": dict(config or {}),
        "facets": list(facets),
    }))


@dataclass(frozen=True)
class EmittedGenext:
    """One emitted generating-extension module, plus its identity."""

    python_source: str
    source_sha256: str
    store_key: str
    pattern_fingerprint: str
    main: str
    facets: tuple[str, ...]
    config: Mapping[str, Any]


def emit_genext(source: str, specs: Sequence[str],
                suite: FacetSuite | None = None,
                config: Mapping[str, Any] | None = None) \
        -> EmittedGenext:
    """Parse, analyze and emit: the whole per-``(source, config)``
    cost of the genext engine, paid once.

    ``config`` is the wire-format override mapping of a service
    request (``{"unfold_strategy": "always", ...}``), not a
    :class:`PEConfig` — the emitted module re-decodes it so the
    manifest stays JSON.
    """
    from repro.service.worker import _decode_config
    suite = suite if suite is not None else default_suite()
    wire_config = dict(config or {})
    _decode_config(wire_config)  # validate early; raises on bad keys
    program = parse_program(source)
    main = program.main
    if len(specs) != main.arity:
        raise PEError(
            f"{main.name}: expected {main.arity} specs, "
            f"got {len(specs)}")
    abstract = AbstractSuite(suite)
    pattern, descriptors, pattern_fp = generalized_pattern(
        suite, abstract, specs)
    analysis = analyze(program, list(pattern), abstract)
    facet_names = tuple(facet_name_of(f) for f in suite.facets)
    source_sha = _sha256(source)
    emitter = _Emitter(analysis, wire_config, facet_names,
                       descriptors, pattern_fp, source_sha)
    return EmittedGenext(
        python_source=emitter.emit(),
        source_sha256=source_sha,
        store_key=genext_store_key(source_sha, wire_config,
                                   facet_names),
        pattern_fingerprint=pattern_fp,
        main=main.name,
        facets=facet_names,
        config=wire_config,
    )


def load_genext(python_source: str,
                name: str = "repro_genext") -> types.ModuleType:
    """Execute an emitted module's source into a fresh module object.

    Raises on anything wrong with it — syntax damage, protocol
    mismatch, unknown facet names; callers that read persisted
    genexts treat any exception as a cache miss and re-emit.
    """
    from repro.faults import fault_point
    fault_point("genext.load")
    module = types.ModuleType(name)
    code = compile(python_source, f"<{name}>", "exec")
    exec(code, module.__dict__)
    for attr in ("specialize", "specialize_specs", "MANIFEST"):
        if not hasattr(module, attr):
            raise PEError(f"emitted genext lacks {attr!r}")
    return module


# -- the emitter -----------------------------------------------------------

class _Def:
    """One emitted function: header, body lines, temp counter."""

    def __init__(self, header: str) -> None:
        self.header = header
        self.lines: list[str] = []
        self._n = 0

    def tmp(self, prefix: str = "_t") -> str:
        self._n += 1
        return f"{prefix}{self._n}"

    def emit(self, line: str, depth: int = 0) -> None:
        self.lines.append("    " * (depth + 1) + line)

    def render(self) -> str:
        return "\n".join([self.header, *self.lines])


class _Emitter:
    def __init__(self, analysis: AnalysisResult,
                 wire_config: Mapping[str, Any],
                 facet_names: Sequence[str],
                 descriptors: Sequence[Mapping[str, Any]],
                 pattern_fp: str, source_sha: str) -> None:
        self.analysis = analysis
        self.program = analysis.program
        self.wire_config = dict(wire_config)
        self.facet_names = tuple(facet_names)
        self.descriptors = [dict(d) for d in descriptors]
        self.pattern_fp = pattern_fp
        self.source_sha = source_sha
        self.fn_index = {fundef.name: i
                         for i, fundef in enumerate(self.program.defs)}
        self.defs: list[_Def] = []
        self._branches = 0
        #: (fn index, value class, rendered literal) -> cell name
        self._consts: dict[tuple, str] = {}
        self._const_lines: list[str] = []
        #: producer name -> cell name
        self._facet_cells: dict[str, str] = {}

    # -- assembly ------------------------------------------------------
    def emit(self) -> str:
        for i, fundef in enumerate(self.program.defs):
            d = _Def(f"def _g_{i}(ctx"
                     + "".join(f", a{j}"
                               for j in range(len(fundef.params)))
                     + "):")
            scope = {param: f"a{j}"
                     for j, param in enumerate(fundef.params)}
            atom = self._expr(fundef.body, i, scope, d)
            d.emit(f"return {atom}")
            self.defs.append(d)
        return self._render()

    def _render(self) -> str:
        main = self.program.main.name
        manifest = {
            "protocol": GENEXT_PROTOCOL,
            "source_sha256": self.source_sha,
            "main": main,
            "facets": list(self.facet_names),
            "config": self.wire_config,
            "pattern": self.descriptors,
            "pattern_fp": self.pattern_fp,
            "functions": [
                {
                    "name": fundef.name,
                    "params": list(fundef.params),
                    "needed": sorted(
                        self.analysis.needed_facets.get(
                            fundef.name, frozenset())),
                    "occurrences": {
                        param: count_occurrences(fundef.body, param)
                        for param in fundef.params
                    },
                }
                for fundef in self.program.defs
            ],
        }
        functions = ",\n".join(
            f"    {fundef.name!r}: _g_{i}"
            for i, fundef in enumerate(self.program.defs))
        profiles = "\n".join(
            f"_pf_{i} = _rt.profile({fundef.name!r})"
            for i, fundef in enumerate(self.program.defs))
        facet_cells = "\n".join(
            f"{cell} = _rt.facet({producer!r})"
            for producer, cell in self._facet_cells.items())
        parts = [
            f'"""Generating extension for {main!r} '
            f'(source sha256 {self.source_sha[:12]}…).\n\n'
            f'Emitted by repro.genext.emit — do not edit.\n"""',
            "",
            "from repro.lang.ast import Const, Var",
            "from repro.genext.runtime import (",
            "    GenextRuntime, build_if, fold, let_exit,",
            "    residual_call, residual_prim, trigger, unbound,",
            "    _inf, _nan, _vec)",
            "",
            "_MANIFEST = " + pprint.pformat(
                manifest, width=72, sort_dicts=True),
            "",
            *(d.render() + "\n" for d in self.defs),
            "_FUNCTIONS = {",
            functions,
            "}",
            "",
            "_rt = GenextRuntime(_MANIFEST, _FUNCTIONS)",
            profiles,
        ]
        if facet_cells:
            parts.append(facet_cells)
        if self._const_lines:
            parts.extend(self._const_lines)
        parts.extend([
            "",
            "MANIFEST = _MANIFEST",
            "runtime = _rt",
            "",
            "",
            "def specialize(inputs):",
            "    return _rt.specialize(inputs)",
            "",
            "",
            "def specialize_specs(specs):",
            "    return _rt.specialize_specs(specs)",
            "",
            "",
            "def specialize_compiled(inputs):",
            "    return _rt.specialize_compiled(inputs)",
        ])
        return "\n".join(parts) + "\n"

    # -- module-level cells --------------------------------------------
    def _const_cell(self, fn_idx: int, value) -> str:
        rendered = self._render_value(value)
        key = (fn_idx, value.__class__.__name__, rendered)
        cell = self._consts.get(key)
        if cell is None:
            cell = f"_k{len(self._consts)}"
            self._consts[key] = cell
            fn = self.program.defs[fn_idx].name
            self._const_lines.append(
                f"{cell} = _rt.const_pair({fn!r}, {rendered})")
        return cell

    def _render_value(self, value) -> str:
        if isinstance(value, bool):
            return repr(value)
        if isinstance(value, int):
            return repr(value)
        if isinstance(value, float):
            if value != value:
                return "_nan"
            if value == _INF:
                return "_inf"
            if value == -_INF:
                return "-_inf"
            return repr(value)
        if isinstance(value, Vector):
            items = ", ".join("None" if item is None else repr(item)
                              for item in value.items)
            comma = "," if len(value.items) == 1 else ""
            return f"_vec(({items}{comma}))"
        raise PEError(
            f"cannot render constant {value!r} in an emitted genext")

    def _facet_cell(self, producer: str) -> str:
        cell = self._facet_cells.get(producer)
        if cell is None:
            cell = f"_fx_{len(self._facet_cells)}"
            self._facet_cells[producer] = cell
        return cell

    # -- expression emission -------------------------------------------
    def _expr(self, expr: Expr, fn_idx: int,
              scope: Mapping[str, str], d: _Def) -> str:
        """Emit statements computing ``expr``'s (Expr, FacetVector)
        pair; returns the atom (a Python expression, usually a local)
        holding it."""
        if isinstance(expr, Const):
            return self._const_cell(fn_idx, expr.value)
        if isinstance(expr, Var):
            atom = scope.get(expr.name)
            if atom is not None:
                return atom
            tmp = d.tmp()
            d.emit(f"{tmp} = unbound({expr.name!r})")
            return tmp
        if isinstance(expr, Prim):
            return self._prim(expr, fn_idx, scope, d)
        if isinstance(expr, If):
            return self._if(expr, fn_idx, scope, d)
        if isinstance(expr, Let):
            return self._let(expr, fn_idx, scope, d)
        if isinstance(expr, Call):
            return self._call(expr, fn_idx, scope, d)
        raise PEError(
            f"higher-order node {type(expr).__name__} reached the "
            f"generating extension")

    def _tuple(self, atoms: Sequence[str]) -> str:
        return "(" + "".join(atom + ", " for atom in atoms) + ")"

    def _prim(self, expr: Prim, fn_idx: int, scope, d: _Def) -> str:
        atoms = [self._expr(arg, fn_idx, scope, d)
                 for arg in expr.args]
        annotation = self.analysis.annotation_of(expr)
        args = self._tuple(atoms)
        pf = f"_pf_{fn_idx}"
        tmp = d.tmp()
        if isinstance(annotation, PrimAnnotation) \
                and annotation.action == FOLD:
            d.emit(f"{tmp} = fold({pf}, ctx, {expr.op!r}, {args})")
        elif isinstance(annotation, PrimAnnotation) \
                and annotation.action == TRIGGER:
            facet = self._facet_cell(annotation.producer or "")
            d.emit(f"{tmp} = trigger({pf}, ctx, {expr.op!r}, {args}, "
                   f"{facet})")
        else:
            d.emit(f"{tmp} = residual_prim({pf}, ctx, {expr.op!r}, "
                   f"{args})")
        return tmp

    def _hoist(self, branch: Expr, fn_idx: int, scope) \
            -> tuple[str, list[str]]:
        """Emit ``branch`` as a shared module-level function over its
        free variables; returns ``(name, argument atoms)``."""
        free = free_vars(branch)
        names = [name for name in scope if name in free]
        self._branches += 1
        fn = f"_b{self._branches}"
        d = _Def(f"def {fn}(ctx"
                 + "".join(f", a{j}" for j in range(len(names)))
                 + "):")
        inner = {name: f"a{j}" for j, name in enumerate(names)}
        atom = self._expr(branch, fn_idx, inner, d)
        d.emit(f"return {atom}")
        self.defs.append(d)
        return fn, [scope[name] for name in names]

    def _if(self, expr: If, fn_idx: int, scope, d: _Def) -> str:
        annotation = self.analysis.annotation_of(expr)
        static_test = isinstance(annotation, IfAnnotation) \
            and annotation.test_bt.is_static
        pf = f"_pf_{fn_idx}"
        test_atom = self._expr(expr.test, fn_idx, scope, d)
        if static_test:
            # The branches are needed both reduced (taken branch only)
            # and residually (bottom caveat: the static test errored
            # upstream) — share them as hoisted functions.
            test = d.tmp("_e")
            d.emit(f"{test} = {test_atom}[0]")
            then_fn, then_args = self._hoist(expr.then, fn_idx, scope)
            else_fn, else_args = self._hoist(expr.else_, fn_idx, scope)
            then_call = f"{then_fn}({', '.join(['ctx', *then_args])})"
            else_call = f"{else_fn}({', '.join(['ctx', *else_args])})"
            tmp = d.tmp()
            d.emit(f"if isinstance({test}, Const) "
                   f"and isinstance({test}.value, bool):")
            d.emit("ctx.stats.if_reductions += 1", depth=1)
            d.emit(f"{tmp} = {then_call} if {test}.value "
                   f"else {else_call}", depth=1)
            d.emit("else:")
            d.emit(f"{tmp} = build_if({pf}, {test}, {then_call}, "
                   f"{else_call})", depth=1)
            return tmp
        then_atom = self._expr(expr.then, fn_idx, scope, d)
        else_atom = self._expr(expr.else_, fn_idx, scope, d)
        tmp = d.tmp()
        d.emit(f"{tmp} = build_if({pf}, {test_atom}[0], {then_atom}, "
               f"{else_atom})")
        return tmp

    def _let(self, expr: Let, fn_idx: int, scope, d: _Def) -> str:
        bound_atom = self._expr(expr.bound, fn_idx, scope, d)
        bound = d.tmp("_e")
        fresh = d.tmp("_lf")
        pair = d.tmp("_lv")
        d.emit(f"{bound} = {bound_atom}[0]")
        d.emit(f"if isinstance({bound}, (Const, Var)):")
        d.emit(f"{fresh} = None", depth=1)
        d.emit(f"{pair} = {bound_atom}", depth=1)
        d.emit("else:")
        d.emit(f"{fresh} = ctx.fresh({expr.name!r})", depth=1)
        d.emit(f"{pair} = (Var({fresh}), {bound_atom}[1])", depth=1)
        inner = dict(scope)
        inner[expr.name] = pair
        body_atom = self._expr(expr.body, fn_idx, inner, d)
        tmp = d.tmp()
        d.emit(f"if {fresh} is None:")
        d.emit(f"{tmp} = {body_atom}", depth=1)
        d.emit("else:")
        d.emit(f"{tmp} = let_exit({fresh}, {bound}, {body_atom})",
               depth=1)
        return tmp

    def _call(self, expr: Call, fn_idx: int, scope, d: _Def) -> str:
        callee = self.program.get(expr.fn)  # raises on unknown callee
        atoms = [self._expr(arg, fn_idx, scope, d)
                 for arg in expr.args]
        tmp = d.tmp()
        d.emit(f"{tmp} = residual_call("
               f"_pf_{self.fn_index[callee.name]}, ctx, "
               f"{self._tuple(atoms)})")
        return tmp
