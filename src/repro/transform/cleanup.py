"""Residual-program cleanups that work at whole-program granularity.

* :func:`drop_unreachable` — remove specialized functions the goal can
  no longer reach (unfolding often strands cache entries);
* :func:`rename_functions` — give residual functions stable, readable
  names (``dotprod_1`` style) in first-use order, so pretty-printed
  residual programs are deterministic across runs;
* :func:`inline_trivial` — inline functions whose body is a constant,
  a variable, or a single call, which unclutters specializer output.
"""

from __future__ import annotations

from typing import Mapping

from repro.lang.ast import Call, Const, Expr, FunDef, Var, map_expr, \
    substitute, walk
from repro.lang.program import Program


def drop_unreachable(program: Program) -> Program:
    """Keep only definitions reachable from the goal function."""
    functions = program.functions()
    reachable: set[str] = set()
    frontier = [program.main.name]
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        reachable.add(name)
        fundef = functions.get(name)
        if fundef is None:
            continue
        for node in walk(fundef.body):
            if isinstance(node, Call) and node.fn not in reachable:
                frontier.append(node.fn)
            if isinstance(node, Var) and node.name in functions \
                    and node.name not in reachable:
                frontier.append(node.name)
    return Program(tuple(d for d in program.defs if d.name in reachable))


def rename_functions(program: Program,
                     renames: Mapping[str, str]) -> Program:
    """Apply a name substitution to definitions and call sites."""
    if not renames:
        return program

    def rewrite(expr: Expr) -> Expr:
        if isinstance(expr, Call) and expr.fn in renames:
            return Call(renames[expr.fn], expr.args)
        if isinstance(expr, Var) and expr.name in renames:
            return Var(renames[expr.name])
        return expr

    defs = []
    for d in program.defs:
        defs.append(FunDef(renames.get(d.name, d.name), d.params,
                           map_expr(d.body, rewrite)))
    return Program(tuple(defs))


def canonical_names(program: Program) -> Program:
    """Rename ``name!k``-style generated functions to ``name_1, ...`` in
    definition order, keeping the goal function's name intact."""
    renames: dict[str, str] = {}
    counters: dict[str, int] = {}
    taken = {d.name for d in program.defs}
    for d in program.defs[1:]:
        base = d.name.split("!", 1)[0]
        if d.name == base:
            continue
        counters[base] = counters.get(base, 0) + 1
        candidate = f"{base}_{counters[base]}"
        while candidate in taken:
            counters[base] += 1
            candidate = f"{base}_{counters[base]}"
        taken.add(candidate)
        renames[d.name] = candidate
    return rename_functions(program, renames)


def inline_trivial(program: Program) -> Program:
    """Inline definitions whose body is a constant or a parameter.

    Only first-order call sites are rewritten; the goal function is
    never inlined away.
    """
    trivial: dict[str, FunDef] = {}
    for d in program.defs[1:]:
        if isinstance(d.body, (Const, Var)):
            trivial[d.name] = d

    if not trivial:
        return program

    def rewrite(expr: Expr) -> Expr:
        if isinstance(expr, Call) and expr.fn in trivial:
            target = trivial[expr.fn]
            bindings = dict(zip(target.params, expr.args))
            return substitute(target.body, bindings)
        return expr

    defs = [FunDef(d.name, d.params, map_expr(d.body, rewrite))
            for d in program.defs]
    return drop_unreachable(Program(tuple(defs)))
