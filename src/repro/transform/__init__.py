"""Residual-program transformations shared by both specializers."""

from repro.transform.cleanup import (
    canonical_names, drop_unreachable, inline_trivial, rename_functions)
from repro.transform.simplify import (
    SimplifyConfig, definitely_total, simplify_expr, simplify_program)

__all__ = [
    "canonical_names", "drop_unreachable", "inline_trivial",
    "rename_functions",
    "SimplifyConfig", "definitely_total", "simplify_expr",
    "simplify_program",
]
