"""Algebraic post-simplification of residual programs.

Figure 8 of the paper shows the inner-product residual *without* the
trailing ``+ 0.0`` that plain unfolding of ``dotProd(A, B, 0)`` leaves
behind; Redfun-class systems perform such algebraic cleanups.  The
Figure 3 semantics does not include them, so we implement them as an
explicit, optional pass (see DESIGN.md, Substitutions).

Soundness discipline: a rewrite may delete a subexpression only when the
subexpression is *definitely total* — guaranteed to evaluate without an
error — because this language's only effect is failure (division by
zero, bad vector access).  ``definitely_total`` is a conservative
syntactic check.

Float identities (``x + 0.0 -> x``, ``x * 1.0 -> x``) are technically
wrong at ``-0.0`` and NaN; the object language cannot construct NaN and
the PE literature applies them regardless, but they sit behind a config
flag (`float_identities`, on by default) and are documented.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import (
    App, Call, Const, Expr, If, Lam, Let, Prim, Var, count_occurrences,
    substitute)
from repro.lang.errors import EvalError
from repro.lang.primitives import apply_primitive, fold_would_blow_up
from repro.lang.program import Program
from repro.lang.values import values_equal

#: Primitives that cannot raise for any type-correct arguments.
_TOTAL_PRIMS = frozenset((
    "+", "-", "*", "neg", "abs", "min", "max",
    "=", "!=", "<", "<=", ">", ">=",
    "and", "or", "not", "itof", "vsize",
))


@dataclass(frozen=True)
class SimplifyConfig:
    """Tunables for the cleanup pass."""

    fold_constants: bool = True
    arithmetic_identities: bool = True
    float_identities: bool = True
    collapse_conditionals: bool = True
    let_cleanup: bool = True
    max_passes: int = 8


def definitely_total(expr: Expr) -> bool:
    """Conservative: True only when evaluating ``expr`` cannot fail.

    Requires every primitive on the path to be total *and* the
    expression to be closed under variables/constants — function calls
    and applications may diverge or fail, so they are never total.
    """
    if isinstance(expr, (Const, Var)):
        return True
    if isinstance(expr, Prim):
        return expr.op in _TOTAL_PRIMS and all(
            definitely_total(a) for a in expr.args)
    if isinstance(expr, If):
        return all(definitely_total(c) for c in expr.children())
    if isinstance(expr, Let):
        return definitely_total(expr.bound) \
            and definitely_total(expr.body)
    if isinstance(expr, Lam):
        # Building a closure never fails (calling it might).
        return True
    return False


def simplify_expr(expr: Expr,
                  config: SimplifyConfig = SimplifyConfig()) -> Expr:
    """Bottom-up rewriting to a (bounded) fixpoint."""
    for _ in range(config.max_passes):
        rewritten = _simplify(expr, config)
        if rewritten == expr:
            return rewritten
        expr = rewritten
    return expr


def simplify_program(program: Program,
                     config: SimplifyConfig = SimplifyConfig()) \
        -> Program:
    """Simplify every body; callers may follow with dead-function
    elimination (:func:`repro.transform.cleanup.drop_unreachable`)."""
    defs = [d.__class__(d.name, d.params, simplify_expr(d.body, config))
            for d in program.defs]
    return Program(tuple(defs))


def _simplify(expr: Expr, config: SimplifyConfig) -> Expr:
    rebuilt = expr.with_children(
        [_simplify(child, config) for child in expr.children()])
    return _rewrite(rebuilt, config)


def _rewrite(expr: Expr, config: SimplifyConfig) -> Expr:
    if isinstance(expr, Prim):
        return _rewrite_prim(expr, config)
    if isinstance(expr, If) and config.collapse_conditionals:
        return _rewrite_if(expr)
    if isinstance(expr, Let) and config.let_cleanup:
        return _rewrite_let(expr)
    return expr


def _const(expr: Expr, value) -> bool:
    return isinstance(expr, Const) and not isinstance(expr.value, bool) \
        and isinstance(expr.value, type(value)) \
        and values_equal(expr.value, value)


def _rewrite_prim(expr: Prim, config: SimplifyConfig) -> Expr:
    args = expr.args
    if config.fold_constants and all(isinstance(a, Const) for a in args):
        values = [a.value for a in args]  # type: ignore[union-attr]
        if fold_would_blow_up(expr.op, values):
            return expr
        try:
            return Const(apply_primitive(expr.op, values))
        except EvalError:
            return expr

    if not config.arithmetic_identities or len(args) != 2:
        return expr
    left, right = args

    def unit(value) -> bool:
        if isinstance(value, float) and not config.float_identities:
            return False
        return True

    if expr.op == "+":
        if _const(left, 0) or (_const(left, 0.0) and unit(0.0)):
            return right
        if _const(right, 0) or (_const(right, 0.0) and unit(0.0)):
            return left
    if expr.op == "-":
        if _const(right, 0) or (_const(right, 0.0) and unit(0.0)):
            return left
    if expr.op == "*":
        if _const(left, 1) or (_const(left, 1.0) and unit(1.0)):
            return right
        if _const(right, 1) or (_const(right, 1.0) and unit(1.0)):
            return left
        # x * 0 -> 0 only when x surely terminates without error.
        if _const(left, 0) and definitely_total(right):
            return left
        if _const(right, 0) and definitely_total(left):
            return right
    if expr.op == "div" and _const(right, 1):
        return left
    return expr


def _rewrite_if(expr: If) -> Expr:
    if isinstance(expr.test, Const) and isinstance(expr.test.value, bool):
        return expr.then if expr.test.value else expr.else_
    if expr.then == expr.else_ and definitely_total(expr.test):
        return expr.then
    if isinstance(expr.test, Prim) and expr.test.op == "not":
        return If(expr.test.args[0], expr.else_, expr.then)
    return expr


def _rewrite_let(expr: Let) -> Expr:
    occurrences = count_occurrences(expr.body, expr.name)
    if occurrences == 0 and definitely_total(expr.bound):
        return expr.body
    if isinstance(expr.bound, (Const, Var)) or occurrences == 1:
        return substitute(expr.body, {expr.name: expr.bound})
    return expr
