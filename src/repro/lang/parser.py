"""Parser: s-expression surface syntax -> AST.

Grammar::

    program  ::= define*
    define   ::= ( define ( name param* ) expr )
    expr     ::= literal
               | symbol
               | ( if expr expr expr )
               | ( let ( binding+ ) expr )          ; sequential, desugars
               | ( lambda ( param* ) expr )
               | ( head expr* )                     ; prim / call / apply
    binding  ::= ( name expr )

Head classification happens after all definitions are known: a primitive
name becomes :class:`Prim`, a defined function name not shadowed by a local
binding becomes :class:`Call`, and anything else (a bound variable or a
compound expression) becomes a higher-order :class:`App`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.lang import lexer
from repro.lang.ast import App, Call, Const, Expr, FunDef, If, Lam, Let, \
    Prim, Var
from repro.lang.errors import ParseError
from repro.lang.lexer import Token
from repro.lang.primitives import is_primitive
from repro.lang.program import Program

_KEYWORDS = frozenset(("define", "if", "let", "lambda", "true", "false"))


@dataclass(frozen=True)
class _SExpr:
    """A raw s-expression: a literal token, a symbol token, or a list."""

    token: Token | None
    items: tuple["_SExpr", ...] | None

    @property
    def is_list(self) -> bool:
        return self.items is not None

    @property
    def line(self) -> int | None:
        if self.token is not None:
            return self.token.line
        if self.items:
            return self.items[0].line
        return None

    @property
    def column(self) -> int | None:
        if self.token is not None:
            return self.token.column
        if self.items:
            return self.items[0].column
        return None


def _read_all(source: str) -> list[_SExpr]:
    tokens = lexer.tokenize(source)
    position = 0
    forms: list[_SExpr] = []
    while tokens[position].kind != lexer.EOF:
        form, position = _read(tokens, position)
        forms.append(form)
    return forms


def _read(tokens: Sequence[Token], position: int) -> tuple[_SExpr, int]:
    token = tokens[position]
    if token.kind == lexer.RPAREN:
        raise ParseError("unexpected ')'", token.line, token.column)
    if token.kind == lexer.EOF:
        raise ParseError("unexpected end of input", token.line, token.column)
    if token.kind != lexer.LPAREN:
        return _SExpr(token, None), position + 1
    position += 1
    items: list[_SExpr] = []
    while True:
        inner = tokens[position]
        if inner.kind == lexer.EOF:
            raise ParseError("unclosed '('", token.line, token.column)
        if inner.kind == lexer.RPAREN:
            return _SExpr(None, tuple(items)), position + 1
        item, position = _read(tokens, position)
        items.append(item)


def parse_program(source: str, validate: bool = True) -> Program:
    """Parse a whole program; optionally validate it."""
    forms = _read_all(source)
    if not forms:
        raise ParseError("empty program")
    headers: list[tuple[str, tuple[str, ...], _SExpr]] = []
    for form in forms:
        headers.append(_parse_define_header(form))
    function_names = set()
    for name, _, _ in headers:
        function_names.add(name)
    defs = []
    for name, params, body_form in headers:
        body = _lower(body_form, set(params), function_names)
        defs.append(FunDef(name, params, body))
    program = Program(tuple(defs))
    if validate:
        program.validate()
    return program


def parse_expr(source: str, function_names: frozenset[str] | set[str]
               = frozenset(), scope: frozenset[str] | set[str]
               = frozenset()) -> Expr:
    """Parse a single expression (for tests and the REPL-style API)."""
    forms = _read_all(source)
    if len(forms) != 1:
        raise ParseError(f"expected one expression, got {len(forms)}")
    return _lower(forms[0], set(scope), set(function_names))


def _parse_define_header(form: _SExpr) \
        -> tuple[str, tuple[str, ...], _SExpr]:
    if not form.is_list or len(form.items or ()) != 3:
        raise ParseError("expected (define (name params...) body)",
                         form.line, form.column)
    keyword, header, body = form.items  # type: ignore[misc]
    if _symbol_text(keyword) != "define":
        raise ParseError("top-level forms must be 'define'",
                         form.line, form.column)
    if not header.is_list or not header.items:
        raise ParseError("expected (name params...)",
                         header.line, header.column)
    name = _require_name(header.items[0], "function name")
    params = tuple(_require_name(p, "parameter") for p in header.items[1:])
    return name, params, body


def _symbol_text(form: _SExpr) -> str | None:
    if form.token is not None and form.token.kind == lexer.SYMBOL:
        return form.token.text
    return None


def _require_name(form: _SExpr, what: str) -> str:
    text = _symbol_text(form)
    if text is None or text in _KEYWORDS:
        raise ParseError(f"expected a {what}", form.line, form.column)
    return text


def _lower(form: _SExpr, scope: set[str], functions: set[str]) -> Expr:
    if not form.is_list:
        return _lower_atom(form, scope, functions)
    items = form.items or ()
    if not items:
        raise ParseError("empty application ()", form.line, form.column)
    head = _symbol_text(items[0])
    if head == "if":
        if len(items) != 4:
            raise ParseError("if needs exactly 3 subexpressions",
                             form.line, form.column)
        return If(_lower(items[1], scope, functions),
                  _lower(items[2], scope, functions),
                  _lower(items[3], scope, functions))
    if head == "let":
        return _lower_let(items, form, scope, functions)
    if head == "lambda":
        return _lower_lambda(items, form, scope, functions)
    if head == "define":
        raise ParseError("define is only allowed at top level",
                         form.line, form.column)
    args = tuple(_lower(item, scope, functions) for item in items[1:])
    if head is not None and head not in scope:
        if is_primitive(head):
            return Prim(head, args)
        if head in functions:
            return Call(head, args)
        raise ParseError(f"unknown operator {head!r}",
                         form.line, form.column)
    return App(_lower(items[0], scope, functions), args)


def _lower_let(items: tuple[_SExpr, ...], form: _SExpr,
               scope: set[str], functions: set[str]) -> Expr:
    if len(items) != 3 or not items[1].is_list:
        raise ParseError("expected (let ((name expr)...) body)",
                         form.line, form.column)
    bindings = []
    for binding in items[1].items or ():
        if not binding.is_list or len(binding.items or ()) != 2:
            raise ParseError("expected (name expr) binding",
                             binding.line, binding.column)
        name = _require_name(binding.items[0], "binding name")  # type: ignore[index]
        bindings.append((name, binding.items[1]))  # type: ignore[index]
    if not bindings:
        raise ParseError("let needs at least one binding",
                         form.line, form.column)
    # Sequential (let*) semantics: each binding sees the previous ones.
    inner_scope = set(scope)
    lowered: list[tuple[str, Expr]] = []
    for name, bound_form in bindings:
        lowered.append((name, _lower(bound_form, inner_scope, functions)))
        inner_scope.add(name)
    body = _lower(items[2], inner_scope, functions)
    for name, bound in reversed(lowered):
        body = Let(name, bound, body)
    return body


def _lower_lambda(items: tuple[_SExpr, ...], form: _SExpr,
                  scope: set[str], functions: set[str]) -> Expr:
    if len(items) != 3 or not items[1].is_list:
        raise ParseError("expected (lambda (params...) body)",
                         form.line, form.column)
    params = tuple(_require_name(p, "parameter")
                   for p in items[1].items or ())
    body = _lower(items[2], scope | set(params), functions)
    return Lam(params, body)


def _lower_atom(form: _SExpr, scope: set[str], functions: set[str]) -> Expr:
    token = form.token
    assert token is not None
    if token.kind in (lexer.INT, lexer.FLOAT, lexer.BOOL):
        return Const(token.value)
    if token.kind == lexer.SYMBOL:
        name = token.text
        if name in _KEYWORDS:
            raise ParseError(f"keyword {name!r} used as a variable",
                             token.line, token.column)
        if name in scope or name in functions:
            return Var(name)
        if is_primitive(name):
            raise ParseError(
                f"primitive {name!r} used as a value; primitives are not "
                f"first-class", token.line, token.column)
        raise ParseError(f"unbound variable {name!r}",
                         token.line, token.column)
    raise ParseError(f"unexpected token {token.text!r}",
                     token.line, token.column)
