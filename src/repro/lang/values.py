"""Concrete value domain of the object language (Figure 1, ``Values``).

The paper's ``Values`` is a sum of basic semantic domains; we carry integers,
floats, booleans and the vector ADT of Section 6.  Each value belongs to
exactly one *sort* — the carrier of the semantic algebra it lives in — which
is what the facet machinery keys on (a facet abstracts one algebra).

Vectors are immutable: ``updvec`` returns a new vector, exactly like the
``UpdVec : V x Int x Float -> V`` operator of Section 6.  Unset slots hold
``None`` and reading one is an :class:`~repro.lang.errors.EvalError`, which
models reading from the "empty vector" ``MkVec`` creates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Union

from repro.lang.errors import EvalError

#: Sort names. Every concrete value and every primitive-signature position
#: is tagged with one of these (or :data:`ANY` in signatures).
INT = "int"
FLOAT = "float"
BOOL = "bool"
VECTOR = "vector"
ANY = "any"

SORTS = (INT, FLOAT, BOOL, VECTOR)


@dataclass(frozen=True)
class Vector:
    """An immutable vector of floats with optional holes.

    ``items`` is a tuple whose entries are floats or ``None`` (unset).
    Indexing is 1-based following the paper's inner-product example, where
    ``dotProd`` walks indices ``n .. 1``.
    """

    items: tuple

    @staticmethod
    def empty(size: int) -> "Vector":
        if size < 0:
            raise EvalError(f"mkvec: negative size {size}")
        return Vector((None,) * size)

    @staticmethod
    def of(values: Iterable[float]) -> "Vector":
        return Vector(tuple(float(v) for v in values))

    @property
    def size(self) -> int:
        return len(self.items)

    def ref(self, index: int) -> float:
        self._check_index(index)
        item = self.items[index - 1]
        if item is None:
            raise EvalError(f"vref: slot {index} is unset")
        return item

    def update(self, index: int, value: float) -> "Vector":
        self._check_index(index)
        items = list(self.items)
        items[index - 1] = float(value)
        return Vector(tuple(items))

    def _check_index(self, index: int) -> None:
        if not isinstance(index, int) or isinstance(index, bool):
            raise EvalError(f"vector index must be an int, got {index!r}")
        if not 1 <= index <= len(self.items):
            raise EvalError(
                f"vector index {index} out of range 1..{len(self.items)}")

    def __str__(self) -> str:
        body = " ".join("_" if v is None else format_value(v)
                        for v in self.items)
        return f"#({body})"


#: A concrete value of the object language.
Value = Union[int, float, bool, Vector]


def sort_of(value: Value) -> str:
    """Return the sort (algebra carrier) a concrete value belongs to."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, Vector):
        return VECTOR
    raise EvalError(f"not an object-language value: {value!r}")


def is_value(obj: object) -> bool:
    """True if ``obj`` is a concrete object-language value."""
    return isinstance(obj, (bool, int, float, Vector))


def check_sort(value: Value, sort: str, context: str) -> Value:
    """Assert that ``value`` has ``sort`` (or the sort is :data:`ANY`)."""
    if sort != ANY and sort_of(value) != sort:
        raise EvalError(
            f"{context}: expected {sort}, got {sort_of(value)} "
            f"({format_value(value)})")
    return value


def values_equal(left: Value, right: Value) -> bool:
    """Structural equality that never identifies values across sorts.

    Python's ``1 == 1.0 == True`` would otherwise make the constant cache
    of the specializers conflate distinct constants.
    """
    return sort_of(left) == sort_of(right) and left == right


#: Tolerances of :func:`values_approx_equal`.  Loose enough to absorb
#: re-association introduced by specialization (constant folding can
#: evaluate ``a + b + c`` in a different order than the residual does),
#: tight enough that a genuinely wrong result never slips through.
APPROX_REL_TOL = 1e-9
APPROX_ABS_TOL = 1e-12


def values_approx_equal(left: Value, right: Value,
                        rel_tol: float = APPROX_REL_TOL,
                        abs_tol: float = APPROX_ABS_TOL) -> bool:
    """Like :func:`values_equal` but tolerant on floats.

    Sorts must still match exactly (``1`` never equals ``1.0``); ints
    and booleans compare exactly; floats compare with ``math.isclose``
    (NaN equals NaN — two engines both producing NaN agree); vectors
    compare elementwise with holes only equal to holes.  This is the
    one approx-equal helper the differential tests and benchmarks
    share, so every ``want == got`` on float-bearing results uses the
    same tolerance.
    """
    if sort_of(left) != sort_of(right):
        return False
    if isinstance(left, Vector):
        if len(left.items) != len(right.items):
            return False
        return all(
            (a is None) == (b is None)
            and (a is None or _floats_close(a, b, rel_tol, abs_tol))
            for a, b in zip(left.items, right.items))
    if isinstance(left, float):
        return _floats_close(left, right, rel_tol, abs_tol)
    return left == right


def _floats_close(left: float, right: float,
                  rel_tol: float, abs_tol: float) -> bool:
    if math.isnan(left) or math.isnan(right):
        return math.isnan(left) and math.isnan(right)
    return math.isclose(left, right, rel_tol=rel_tol, abs_tol=abs_tol)


def format_value(value: Value) -> str:
    """Render a value in surface syntax (also used by ``K^-1``)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        # Keep floats round-trippable through the lexer.
        text = repr(value)
        return text if ("." in text or "e" in text or "inf" in text
                        or "nan" in text) else text + ".0"
    return str(value)
