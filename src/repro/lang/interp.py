"""Standard semantics (Figure 1), operationally.

A strict, environment-based evaluator.  Two departures from the figure,
both operational conveniences:

* a *fuel* budget bounds the number of evaluation steps, turning
  divergence into a catchable :class:`~repro.lang.errors.FuelExhausted`
  (the denotational semantics would produce bottom);
* the evaluator counts the steps it takes (node visits and primitive
  applications), which is the work measure the residual-speedup benchmark
  reports — the same program run through the same evaluator, so the
  comparison is apples to apples.

``let``, ``lambda`` and application extend Figure 1 in the standard way;
closures capture their defining environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.lang.ast import (
    App, Call, Const, Expr, If, Lam, Let, Prim, Var)
from repro.lang.errors import EvalError, FuelExhausted
from repro.lang.primitives import apply_primitive
from repro.lang.program import Program
from repro.lang.values import Value, is_value

#: Default step budget; generous enough for every example and benchmark.
DEFAULT_FUEL = 5_000_000


@dataclass(frozen=True)
class Closure:
    """A lambda value paired with its captured environment."""

    params: tuple[str, ...]
    body: Expr
    env: "Env"

    def __str__(self) -> str:
        return f"<closure/{len(self.params)}>"


@dataclass(frozen=True)
class FunRef:
    """A first-class reference to a top-level function."""

    name: str

    def __str__(self) -> str:
        return f"<function {self.name}>"


Env = Mapping[str, object]


@dataclass
class EvalStats:
    """Work counters for one evaluation."""

    steps: int = 0
    prim_applications: int = 0
    fun_calls: int = 0


class Interpreter:
    """The valuation function ``E`` of Figure 1 plus extensions."""

    def __init__(self, program: Program, fuel: int = DEFAULT_FUEL) -> None:
        self.program = program
        self.functions = program.functions()
        self.fuel = fuel
        self.stats = EvalStats()

    def run(self, *args: Value) -> Value:
        """Evaluate the goal function ``f_1`` on concrete arguments.

        Deep object-language recursion nests Python frames; the budget
        is raised for the duration, and blowing it anyway is reported
        as fuel exhaustion (the resource-limit view of divergence).
        """
        import sys
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 100_000))
        try:
            return self.call(self.program.main.name, list(args))
        except RecursionError:
            raise FuelExhausted(
                "evaluation exceeded the host recursion budget") \
                from None
        finally:
            sys.setrecursionlimit(old_limit)

    def call(self, name: str, args: Sequence[object]) -> Value:
        """Evaluate a named function on (already evaluated) arguments."""
        fundef = self.functions.get(name)
        if fundef is None:
            raise EvalError(f"call to unknown function {name!r}")
        if len(args) != fundef.arity:
            raise EvalError(
                f"{name}: expected {fundef.arity} arguments, "
                f"got {len(args)}")
        self.stats.fun_calls += 1
        env = dict(zip(fundef.params, args))
        return self.eval(fundef.body, env)

    def eval(self, expr: Expr, env: Env) -> Value:
        """Evaluate ``expr`` in ``env``."""
        self._tick()
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            try:
                return env[expr.name]  # type: ignore[return-value]
            except KeyError:
                if expr.name in self.functions:
                    return FunRef(expr.name)  # type: ignore[return-value]
                raise EvalError(f"unbound variable {expr.name!r}") from None
        if isinstance(expr, Prim):
            args = [self.eval(a, env) for a in expr.args]
            for arg in args:
                if not is_value(arg):
                    raise EvalError(
                        f"{expr.op}: functional value passed to a "
                        f"primitive")
            self.stats.prim_applications += 1
            return apply_primitive(expr.op, args)
        if isinstance(expr, If):
            test = self.eval(expr.test, env)
            if not isinstance(test, bool):
                raise EvalError("if: test did not produce a boolean")
            return self.eval(expr.then if test else expr.else_, env)
        if isinstance(expr, Let):
            bound = self.eval(expr.bound, env)
            inner = dict(env)
            inner[expr.name] = bound
            return self.eval(expr.body, inner)
        if isinstance(expr, Call):
            args = [self.eval(a, env) for a in expr.args]
            return self.call(expr.fn, args)
        if isinstance(expr, Lam):
            return Closure(expr.params, expr.body,  # type: ignore[return-value]
                           dict(env))
        if isinstance(expr, App):
            fn = self.eval(expr.fn, env)
            args = [self.eval(a, env) for a in expr.args]
            return self.apply(fn, args)
        raise EvalError(f"unknown expression node {expr!r}")

    def apply(self, fn: object, args: Sequence[object]) -> Value:
        """Apply a functional value (closure or function reference)."""
        if isinstance(fn, Closure):
            if len(args) != len(fn.params):
                raise EvalError(
                    f"closure expects {len(fn.params)} arguments, "
                    f"got {len(args)}")
            self.stats.fun_calls += 1
            env = dict(fn.env)
            env.update(zip(fn.params, args))
            return self.eval(fn.body, env)
        if isinstance(fn, FunRef):
            return self.call(fn.name, args)
        raise EvalError(f"cannot apply non-function {fn!r}")

    def _tick(self) -> None:
        self.stats.steps += 1
        if self.stats.steps > self.fuel:
            raise FuelExhausted(
                f"evaluation exceeded {self.fuel} steps")


def run_program(program: Program, *args: Value,
                fuel: int = DEFAULT_FUEL) -> Value:
    """One-shot evaluation of a program's goal function."""
    return Interpreter(program, fuel=fuel).run(*args)


def run_with_stats(program: Program, *args: Value,
                   fuel: int = DEFAULT_FUEL) -> tuple[Value, EvalStats]:
    """Evaluate and return the work counters alongside the result."""
    interp = Interpreter(program, fuel=fuel)
    result = interp.run(*args)
    return result, interp.stats
