"""Primitive operators: concrete semantics and algebra classification.

Each primitive belongs to a semantic algebra ``[D; O]`` whose carrier is one
of the value sorts.  Following Section 3.2, a primitive is **closed** when
its co-domain equals the carrier (``+ : Int x Int -> Int``) and **open**
when it differs (``< : Int x Int -> Bool``, ``vsize : V -> Int``).  Closed
operators of a facet compute new abstract values; open operators use
abstract values to trigger computations at PE time.

Arithmetic and comparison primitives are overloaded over the ``int`` and
``float`` algebras; each overload is a separate :class:`PrimSig` with its
own carrier, so a facet instantiated for one algebra only sees the
overloads of that carrier.  The concrete semantics (``K_p`` of Figure 1)
is :func:`apply_primitive`; it type-checks arguments against the
signatures and raises :class:`~repro.lang.errors.EvalError` on sort
mismatches, division by zero and bad vector accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.lang.errors import EvalError
from repro.lang.values import (
    ANY, BOOL, FLOAT, INT, VECTOR, Value, Vector, sort_of)


@dataclass(frozen=True)
class PrimSig:
    """One monomorphic instance of a primitive operator.

    ``carrier`` names the algebra the instance belongs to; the instance is
    closed iff ``result_sort == carrier``.
    """

    arg_sorts: tuple[str, ...]
    result_sort: str
    carrier: str

    @property
    def is_closed(self) -> bool:
        return self.result_sort == self.carrier

    @property
    def is_open(self) -> bool:
        return not self.is_closed

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)

    def matches(self, arg_sorts: Sequence[str]) -> bool:
        if len(arg_sorts) != len(self.arg_sorts):
            return False
        return all(want == ANY or want == got
                   for want, got in zip(self.arg_sorts, arg_sorts))


@dataclass(frozen=True)
class Primitive:
    """A primitive operator with its overload instances and semantics."""

    name: str
    sigs: tuple[PrimSig, ...]
    fn: Callable[..., Value]
    #: Pure primitives may be discarded or duplicated by the specializers;
    #: everything in this language is pure, but the flag keeps the
    #: transformation code honest about why it may drop an expression.
    pure: bool = True

    @property
    def arity(self) -> int:
        return self.sigs[0].arity

    def resolve(self, arg_sorts: Sequence[str]) -> PrimSig | None:
        """The overload matching the given argument sorts, if any."""
        for sig in self.sigs:
            if sig.matches(arg_sorts):
                return sig
        return None

    def carriers(self) -> frozenset[str]:
        """All algebras this primitive has an instance in."""
        return frozenset(sig.carrier for sig in self.sigs)


def _numeric_binop(name: str, int_fn, float_fn) -> Primitive:
    def fn(a: Value, b: Value) -> Value:
        if isinstance(a, bool) or isinstance(b, bool):
            raise EvalError(f"{name}: expected numbers, got booleans")
        if isinstance(a, int) and isinstance(b, int):
            return int_fn(a, b)
        if isinstance(a, float) and isinstance(b, float):
            return float_fn(a, b)
        raise EvalError(
            f"{name}: mixed or non-numeric operands "
            f"({sort_of(a)}, {sort_of(b)})")

    return Primitive(name, (
        PrimSig((INT, INT), INT, INT),
        PrimSig((FLOAT, FLOAT), FLOAT, FLOAT),
    ), fn)


def _numeric_compare(name: str, cmp) -> Primitive:
    def fn(a: Value, b: Value) -> Value:
        if isinstance(a, bool) or isinstance(b, bool):
            raise EvalError(f"{name}: expected numbers, got booleans")
        if (isinstance(a, int) and isinstance(b, int)) or (
                isinstance(a, float) and isinstance(b, float)):
            return bool(cmp(a, b))
        raise EvalError(
            f"{name}: mixed or non-numeric operands "
            f"({sort_of(a)}, {sort_of(b)})")

    return Primitive(name, (
        PrimSig((INT, INT), BOOL, INT),
        PrimSig((FLOAT, FLOAT), BOOL, FLOAT),
    ), fn)


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise EvalError("div: division by zero")
    # Truncating division, the usual choice for PE literature examples.
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _int_mod(a: int, b: int) -> int:
    if b == 0:
        raise EvalError("mod: division by zero")
    return a - b * _int_div(a, b)


def _float_div(a: float, b: float) -> float:
    if b == 0.0:
        raise EvalError("/: division by zero")
    return a / b


def _neg(a: Value) -> Value:
    if isinstance(a, bool) or not isinstance(a, (int, float)):
        raise EvalError("neg: expected a number")
    return -a


def _abs(a: Value) -> Value:
    if isinstance(a, bool) or not isinstance(a, (int, float)):
        raise EvalError("abs: expected a number")
    return abs(a)


def _bool_arg(name: str, a: Value) -> bool:
    if not isinstance(a, bool):
        raise EvalError(f"{name}: expected a boolean, got {sort_of(a)}")
    return a


def _mkvec(size: Value) -> Vector:
    if isinstance(size, bool) or not isinstance(size, int):
        raise EvalError("mkvec: size must be an int")
    return Vector.empty(size)


def _updvec(vec: Value, index: Value, value: Value) -> Vector:
    if not isinstance(vec, Vector):
        raise EvalError("updvec: first argument must be a vector")
    if isinstance(index, bool) or not isinstance(index, int):
        raise EvalError("updvec: index must be an int")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise EvalError("updvec: element must be a number")
    return vec.update(index, float(value))


def _vsize(vec: Value) -> int:
    if not isinstance(vec, Vector):
        raise EvalError("vsize: expected a vector")
    return vec.size


def _vref(vec: Value, index: Value) -> float:
    if not isinstance(vec, Vector):
        raise EvalError("vref: first argument must be a vector")
    if isinstance(index, bool) or not isinstance(index, int):
        raise EvalError("vref: index must be an int")
    return vec.ref(index)


def _itof(a: Value) -> float:
    if isinstance(a, bool) or not isinstance(a, int):
        raise EvalError("itof: expected an int")
    return float(a)


_ALL = [
    _numeric_binop("+", lambda a, b: a + b, lambda a, b: a + b),
    _numeric_binop("-", lambda a, b: a - b, lambda a, b: a - b),
    _numeric_binop("*", lambda a, b: a * b, lambda a, b: a * b),
    _numeric_binop("min", min, min),
    _numeric_binop("max", max, max),
    Primitive("div", (PrimSig((INT, INT), INT, INT),), _int_div),
    Primitive("mod", (PrimSig((INT, INT), INT, INT),), _int_mod),
    Primitive("/", (PrimSig((FLOAT, FLOAT), FLOAT, FLOAT),), _float_div),
    Primitive("neg", (
        PrimSig((INT,), INT, INT),
        PrimSig((FLOAT,), FLOAT, FLOAT),
    ), _neg),
    Primitive("abs", (
        PrimSig((INT,), INT, INT),
        PrimSig((FLOAT,), FLOAT, FLOAT),
    ), _abs),
    _numeric_compare("=", lambda a, b: a == b),
    _numeric_compare("!=", lambda a, b: a != b),
    _numeric_compare("<", lambda a, b: a < b),
    _numeric_compare("<=", lambda a, b: a <= b),
    _numeric_compare(">", lambda a, b: a > b),
    _numeric_compare(">=", lambda a, b: a >= b),
    Primitive("and", (PrimSig((BOOL, BOOL), BOOL, BOOL),),
              lambda a, b: _bool_arg("and", a) and _bool_arg("and", b)),
    Primitive("or", (PrimSig((BOOL, BOOL), BOOL, BOOL),),
              lambda a, b: _bool_arg("or", a) or _bool_arg("or", b)),
    Primitive("not", (PrimSig((BOOL,), BOOL, BOOL),),
              lambda a: not _bool_arg("not", a)),
    Primitive("itof", (PrimSig((INT,), FLOAT, INT),), _itof),
    # The vector ADT of Section 6. ``mkvec`` and ``updvec`` are closed
    # (co-domain = V); ``vsize`` and ``vref`` are open.
    Primitive("mkvec", (PrimSig((INT,), VECTOR, VECTOR),), _mkvec),
    Primitive("updvec",
              (PrimSig((VECTOR, INT, FLOAT), VECTOR, VECTOR),), _updvec),
    Primitive("vsize", (PrimSig((VECTOR,), INT, VECTOR),), _vsize),
    Primitive("vref", (PrimSig((VECTOR, INT), FLOAT, VECTOR),), _vref),
]

#: The global primitive registry, name -> :class:`Primitive`.
PRIMITIVES: dict[str, Primitive] = {p.name: p for p in _ALL}


def is_primitive(name: str) -> bool:
    """True if ``name`` is a known primitive operator."""
    return name in PRIMITIVES


def get_primitive(name: str) -> Primitive:
    """Look up a primitive; raises :class:`EvalError` if unknown."""
    try:
        return PRIMITIVES[name]
    except KeyError:
        raise EvalError(f"unknown primitive {name!r}") from None


def apply_primitive(name: str, args: Sequence[Value]) -> Value:
    """The concrete semantics ``K_p`` of Figure 1."""
    prim = get_primitive(name)
    if len(args) != prim.arity:
        raise EvalError(
            f"{name}: expected {prim.arity} arguments, got {len(args)}")
    sig = prim.resolve([sort_of(a) for a in args])
    if sig is None:
        sorts = ", ".join(sort_of(a) for a in args)
        raise EvalError(f"{name}: no overload for argument sorts ({sorts})")
    return prim.fn(*args)


#: Constant folding refuses ``*`` once an operand crosses this bit
#: length.  Multiplication doubles bit length, so a specialized
#: squaring loop (``(* x x)`` with a static ``x``, unfolded a few
#: dozen times) builds integers too large for a *single* ``x * y`` to
#: finish within any budget — and the step meter can only interrupt
#: between operations, never inside one.  512 bits (~10^154) is far
#: beyond anything a workload computes deliberately.
FOLD_MAGNITUDE_BITS = 512


def fold_would_blow_up(name: str, args: Sequence[Value]) -> bool:
    """True when folding ``name`` over constant ``args`` would grow
    integer magnitudes without bound under repeated folding.  Folding
    sites residualize the operation instead; run-time semantics are
    unchanged — the residual still computes the exact value if
    execution ever reaches it (mirroring how folds that *raise* are
    kept residual rather than folded into an error)."""
    if name != "*":
        return False
    return any(isinstance(arg, int) and not isinstance(arg, bool)
               and arg.bit_length() > FOLD_MAGNITUDE_BITS
               for arg in args)


def primitives_for_carrier(carrier: str) -> list[tuple[str, PrimSig]]:
    """All (name, signature) instances whose algebra is ``carrier``."""
    result = []
    for prim in PRIMITIVES.values():
        for sig in prim.sigs:
            if sig.carrier == carrier:
                result.append((prim.name, sig))
    return result
