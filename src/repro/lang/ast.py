"""Abstract syntax of the object language (Figure 1, extended).

The paper's first-order grammar is::

    e ::= c | x | p(e1, ..., en) | f(e1, ..., en) | if e1 e2 e3

We add two forms the paper uses informally: ``let`` (Figure 9's inner-product
program binds ``n`` with a let) and, for Section 5.5, ``lambda`` and general
application.  All nodes are immutable dataclasses; structural equality is the
equality of residual programs.

Expressions are ordinary trees — no sharing is assumed — and every traversal
helper here (:func:`free_vars`, :func:`substitute`, :func:`expr_size`, ...)
is pure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

from repro.lang.values import Value, format_value


class Expr:
    """Base class of all expression nodes."""

    __slots__ = ()

    def children(self) -> tuple["Expr", ...]:
        """Immediate subexpressions, left to right."""
        raise NotImplementedError

    def with_children(self, children: Sequence["Expr"]) -> "Expr":
        """Rebuild this node with new immediate subexpressions."""
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant ``c``; ``value`` is a concrete value."""

    value: Value

    def children(self) -> tuple[Expr, ...]:
        return ()

    def with_children(self, children: Sequence[Expr]) -> "Const":
        assert not children
        return self

    def __str__(self) -> str:
        return format_value(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A variable reference ``x``."""

    name: str

    def children(self) -> tuple[Expr, ...]:
        return ()

    def with_children(self, children: Sequence[Expr]) -> "Var":
        assert not children
        return self

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Prim(Expr):
    """A primitive application ``p(e1, ..., en)``."""

    op: str
    args: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def with_children(self, children: Sequence[Expr]) -> "Prim":
        return Prim(self.op, tuple(children))

    def __str__(self) -> str:
        from repro.lang.pretty import pretty
        return pretty(self)


@dataclass(frozen=True)
class Call(Expr):
    """A first-order call ``f(e1, ..., en)`` to a named function."""

    fn: str
    args: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def with_children(self, children: Sequence[Expr]) -> "Call":
        return Call(self.fn, tuple(children))

    def __str__(self) -> str:
        from repro.lang.pretty import pretty
        return pretty(self)


@dataclass(frozen=True)
class If(Expr):
    """The strict conditional ``if e1 e2 e3``."""

    test: Expr
    then: Expr
    else_: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.test, self.then, self.else_)

    def with_children(self, children: Sequence[Expr]) -> "If":
        test, then, else_ = children
        return If(test, then, else_)

    def __str__(self) -> str:
        from repro.lang.pretty import pretty
        return pretty(self)


@dataclass(frozen=True)
class Let(Expr):
    """``let x = bound in body`` — strict, non-recursive, single binding.

    Multi-binding surface ``let`` forms are desugared to nested
    :class:`Let` nodes by the parser.
    """

    name: str
    bound: Expr
    body: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.bound, self.body)

    def with_children(self, children: Sequence[Expr]) -> "Let":
        bound, body = children
        return Let(self.name, bound, body)

    def __str__(self) -> str:
        from repro.lang.pretty import pretty
        return pretty(self)


@dataclass(frozen=True)
class Lam(Expr):
    """An anonymous function ``lambda (x1 ... xn) e`` (Section 5.5)."""

    params: tuple[str, ...]
    body: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.body,)

    def with_children(self, children: Sequence[Expr]) -> "Lam":
        (body,) = children
        return Lam(self.params, body)

    def __str__(self) -> str:
        from repro.lang.pretty import pretty
        return pretty(self)


@dataclass(frozen=True)
class App(Expr):
    """A higher-order application ``e(e1, ..., en)`` (Section 5.5).

    The operator position is a general expression; first-order calls to
    named functions use :class:`Call` instead.
    """

    fn: Expr
    args: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return (self.fn,) + self.args

    def with_children(self, children: Sequence[Expr]) -> "App":
        fn, *args = children
        return App(fn, tuple(args))

    def __str__(self) -> str:
        from repro.lang.pretty import pretty
        return pretty(self)


@dataclass(frozen=True)
class FunDef:
    """A top-level definition ``f(x1, ..., xn) = body``."""

    name: str
    params: tuple[str, ...]
    body: Expr

    @property
    def arity(self) -> int:
        return len(self.params)

    def __str__(self) -> str:
        from repro.lang.pretty import pretty_def
        return pretty_def(self)


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------

def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and all its subexpressions, pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def expr_size(expr: Expr) -> int:
    """Number of AST nodes — the size measure used by the benchmarks."""
    return sum(1 for _ in walk(expr))


def free_vars(expr: Expr) -> frozenset[str]:
    """The free variables of ``expr``."""
    if isinstance(expr, Var):
        return frozenset((expr.name,))
    if isinstance(expr, Const):
        return frozenset()
    if isinstance(expr, Let):
        return free_vars(expr.bound) | (free_vars(expr.body)
                                        - frozenset((expr.name,)))
    if isinstance(expr, Lam):
        return free_vars(expr.body) - frozenset(expr.params)
    result: frozenset[str] = frozenset()
    for child in expr.children():
        result |= free_vars(child)
    return result


def called_functions(expr: Expr) -> frozenset[str]:
    """Names of all user functions called (via :class:`Call`) in ``expr``."""
    return frozenset(node.fn for node in walk(expr) if isinstance(node, Call))


def used_primitives(expr: Expr) -> frozenset[str]:
    """Names of all primitives applied in ``expr``."""
    return frozenset(node.op for node in walk(expr) if isinstance(node, Prim))


def count_occurrences(expr: Expr, name: str) -> int:
    """Number of *free* occurrences of variable ``name`` in ``expr``.

    Iterative (like :func:`walk`): the specializers run this on residual
    expressions whose nesting depth is bounded only by their budgets,
    far past Python's recursion limit.
    """
    count = 0
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, Var):
            if node.name == name:
                count += 1
        elif isinstance(node, Let):
            stack.append(node.bound)
            if node.name != name:
                stack.append(node.body)
        elif isinstance(node, Lam):
            if name not in node.params:
                stack.append(node.body)
        else:
            stack.extend(node.children())
    return count


def substitute(expr: Expr, bindings: Mapping[str, Expr]) -> Expr:
    """Capture-avoiding parallel substitution of ``bindings`` in ``expr``.

    Binders that would capture a free variable of a substituted expression
    are renamed with :func:`fresh_name`.
    """
    if not bindings:
        return expr
    if isinstance(expr, Var):
        return bindings.get(expr.name, expr)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Let):
        bound = substitute(expr.bound, bindings)
        inner = {k: v for k, v in bindings.items() if k != expr.name}
        name = expr.name
        body = expr.body
        if inner and any(name in free_vars(v) for v in inner.values()):
            name = fresh_name(name, _substitution_avoid(expr.body, inner))
            body = substitute(body, {expr.name: Var(name)})
        return Let(name, bound, substitute(body, inner))
    if isinstance(expr, Lam):
        inner = {k: v for k, v in bindings.items() if k not in expr.params}
        params = list(expr.params)
        body = expr.body
        if inner:
            avoid = _substitution_avoid(expr.body, inner)
            renames: dict[str, Expr] = {}
            for i, param in enumerate(params):
                if any(param in free_vars(v) for v in inner.values()):
                    new = fresh_name(param, avoid)
                    avoid = avoid | {new}
                    renames[param] = Var(new)
                    params[i] = new
            if renames:
                body = substitute(body, renames)
        return Lam(tuple(params), substitute(body, inner))
    return expr.with_children(
        [substitute(child, bindings) for child in expr.children()])


def _substitution_avoid(body: Expr, bindings: Mapping[str, Expr]) -> set[str]:
    avoid = set(free_vars(body))
    for value in bindings.values():
        avoid |= free_vars(value)
    avoid |= set(bindings.keys())
    return avoid


def fresh_name(base: str, avoid: set[str] | frozenset[str]) -> str:
    """A name derived from ``base`` that is not in ``avoid``."""
    if base not in avoid:
        return base
    index = 1
    while f"{base}_{index}" in avoid:
        index += 1
    return f"{base}_{index}"


def map_expr(expr: Expr, fn: Callable[[Expr], Expr]) -> Expr:
    """Rebuild ``expr`` bottom-up, applying ``fn`` to every node."""
    rebuilt = expr.with_children(
        [map_expr(child, fn) for child in expr.children()])
    return fn(rebuilt)


def alpha_equal(left: Expr, right: Expr) -> bool:
    """Alpha-equivalence (equality up to bound-variable names)."""
    return _alpha(left, right, {}, {})


def _alpha(left: Expr, right: Expr,
           lmap: dict[str, int], rmap: dict[str, int]) -> bool:
    if type(left) is not type(right):
        return False
    if isinstance(left, Const):
        from repro.lang.values import values_equal
        return values_equal(left.value, right.value)
    if isinstance(left, Var):
        assert isinstance(right, Var)
        if left.name in lmap or right.name in rmap:
            return lmap.get(left.name) == rmap.get(right.name)
        return left.name == right.name
    if isinstance(left, Let):
        assert isinstance(right, Let)
        if not _alpha(left.bound, right.bound, lmap, rmap):
            return False
        index = len(lmap) + len(rmap)
        return _alpha(left.body, right.body,
                      {**lmap, left.name: index},
                      {**rmap, right.name: index})
    if isinstance(left, Lam):
        assert isinstance(right, Lam)
        if len(left.params) != len(right.params):
            return False
        new_l, new_r = dict(lmap), dict(rmap)
        base = len(lmap) + len(rmap)
        for i, (lp, rp) in enumerate(zip(left.params, right.params)):
            new_l[lp] = new_r[rp] = base + i
        return _alpha(left.body, right.body, new_l, new_r)
    if isinstance(left, Prim) and left.op != right.op:  # type: ignore[union-attr]
        return False
    if isinstance(left, Call) and left.fn != right.fn:  # type: ignore[union-attr]
        return False
    lchildren, rchildren = left.children(), right.children()
    if len(lchildren) != len(rchildren):
        return False
    return all(_alpha(lc, rc, lmap, rmap)
               for lc, rc in zip(lchildren, rchildren))
