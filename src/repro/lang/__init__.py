"""The object language: syntax, parsing, printing, standard semantics.

This package is the substrate every other part of the reproduction builds
on: Figure 1's first-order strict functional language, extended with
``let`` (used by the paper's Figure 9) and ``lambda``/application
(Section 5.5).
"""

from repro.lang.ast import (
    App, Call, Const, Expr, FunDef, If, Lam, Let, Prim, Var,
    alpha_equal, called_functions, count_occurrences, expr_size, free_vars,
    fresh_name, map_expr, substitute, used_primitives, walk)
from repro.lang.errors import (
    ConsistencyError, EvalError, FuelExhausted, LangError, LexError,
    ParseError, PEError, ValidationError)
from repro.lang.interp import (
    Closure, EvalStats, FunRef, Interpreter, run_program, run_with_stats)
from repro.lang.parser import parse_expr, parse_program
from repro.lang.pretty import (
    pretty, pretty_def, pretty_indented, pretty_program)
from repro.lang.primitives import (
    PRIMITIVES, Primitive, PrimSig, apply_primitive, get_primitive,
    is_primitive, primitives_for_carrier)
from repro.lang.program import Program, is_first_order
from repro.lang.values import (
    ANY, BOOL, FLOAT, INT, SORTS, VECTOR, Value, Vector, format_value,
    is_value, sort_of, values_equal)

__all__ = [
    "App", "Call", "Const", "Expr", "FunDef", "If", "Lam", "Let", "Prim",
    "Var", "alpha_equal", "called_functions", "count_occurrences",
    "expr_size", "free_vars", "fresh_name", "map_expr", "substitute",
    "used_primitives", "walk",
    "ConsistencyError", "EvalError", "FuelExhausted", "LangError",
    "LexError", "ParseError", "PEError", "ValidationError",
    "Closure", "EvalStats", "FunRef", "Interpreter", "run_program",
    "run_with_stats",
    "parse_expr", "parse_program",
    "pretty", "pretty_def", "pretty_indented", "pretty_program",
    "PRIMITIVES", "Primitive", "PrimSig", "apply_primitive",
    "get_primitive", "is_primitive", "primitives_for_carrier",
    "Program", "is_first_order",
    "ANY", "BOOL", "FLOAT", "INT", "SORTS", "VECTOR", "Value", "Vector",
    "format_value", "is_value", "sort_of", "values_equal",
]
