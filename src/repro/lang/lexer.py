"""Tokenizer for the s-expression surface syntax.

The syntax is deliberately small: parentheses, symbols, integer and float
literals, the boolean literals ``true``/``false``, and ``;`` line comments.
Symbols may contain the usual Lisp identifier characters, which lets
primitive names like ``+``, ``<=`` and ``-`` be plain symbols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.lang.errors import LexError

LPAREN = "lparen"
RPAREN = "rparen"
INT = "int"
FLOAT = "float"
BOOL = "bool"
SYMBOL = "symbol"
EOF = "eof"

_SYMBOL_CHARS = set(
    "abcdefghijklmnopqrstuvwxyz"
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789"
    "+-*/<>=!?_.%&$^~@")


@dataclass(frozen=True)
class Token:
    """A single token with its 1-based source position."""

    kind: str
    text: str
    line: int
    column: int

    @property
    def value(self):
        """The Python value of a literal token."""
        if self.kind == INT:
            return int(self.text)
        if self.kind == FLOAT:
            return float(self.text)
        if self.kind == BOOL:
            return self.text == "true"
        return self.text


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``, appending a final :data:`EOF` token."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    line, column = 1, 1
    index = 0
    length = len(source)
    while index < length:
        char = source[index]
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == ";":
            while index < length and source[index] != "\n":
                index += 1
            continue
        if char == "(":
            yield Token(LPAREN, "(", line, column)
            index += 1
            column += 1
            continue
        if char == ")":
            yield Token(RPAREN, ")", line, column)
            index += 1
            column += 1
            continue
        if char in _SYMBOL_CHARS:
            start = index
            start_column = column
            while index < length and source[index] in _SYMBOL_CHARS:
                index += 1
                column += 1
            text = source[start:index]
            yield _classify(text, line, start_column)
            continue
        raise LexError(f"unexpected character {char!r}", line, column)
    yield Token(EOF, "", line, column)


def _classify(text: str, line: int, column: int) -> Token:
    if text in ("true", "false"):
        return Token(BOOL, text, line, column)
    if _is_int(text):
        return Token(INT, text, line, column)
    if _is_float(text):
        return Token(FLOAT, text, line, column)
    return Token(SYMBOL, text, line, column)


def _is_int(text: str) -> bool:
    body = text[1:] if text[:1] in "+-" else text
    return body.isdigit()


def _is_float(text: str) -> bool:
    if not any(c.isdigit() for c in text):
        return False
    try:
        float(text)
    except ValueError:
        return False
    return True
