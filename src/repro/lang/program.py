"""Programs: ordered collections of top-level function definitions.

A program is a list of ``f_i(x_1, ..., x_n) = e_i`` definitions; the first
definition is the *goal* function ``f_1`` whose value is the meaning of the
program (Figure 1).  :meth:`Program.validate` enforces the well-formedness
assumptions the semantics take for granted: unique function names, no
parameter shadowing a function, every variable bound, every call resolving
to a known function with the right arity, every primitive known with the
right arity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.lang.ast import (
    App, Call, Const, Expr, FunDef, If, Lam, Let, Prim, Var, walk)
from repro.lang.errors import ValidationError
from repro.lang.primitives import PRIMITIVES


@dataclass(frozen=True)
class Program:
    """An immutable, validated-on-demand program."""

    defs: tuple[FunDef, ...]

    def __post_init__(self) -> None:
        if not self.defs:
            raise ValidationError("a program needs at least one definition")

    @staticmethod
    def of(defs: Iterable[FunDef]) -> "Program":
        return Program(tuple(defs))

    @property
    def main(self) -> FunDef:
        """The goal function ``f_1``."""
        return self.defs[0]

    def functions(self) -> dict[str, FunDef]:
        """Function environment as a name-keyed dict."""
        return {d.name: d for d in self.defs}

    def get(self, name: str) -> FunDef:
        for d in self.defs:
            if d.name == name:
                return d
        raise ValidationError(f"no function named {name!r}")

    def __iter__(self) -> Iterator[FunDef]:
        return iter(self.defs)

    def __len__(self) -> int:
        return len(self.defs)

    def size(self) -> int:
        """Total AST node count over all bodies."""
        from repro.lang.ast import expr_size
        return sum(expr_size(d.body) for d in self.defs)

    def with_def(self, new_def: FunDef) -> "Program":
        """Replace or append one definition."""
        defs = list(self.defs)
        for i, d in enumerate(defs):
            if d.name == new_def.name:
                defs[i] = new_def
                return Program(tuple(defs))
        defs.append(new_def)
        return Program(tuple(defs))

    def validate(self, allow_higher_order: bool = True) -> None:
        """Check well-formedness; raises :class:`ValidationError`."""
        seen: set[str] = set()
        for d in self.defs:
            if d.name in seen:
                raise ValidationError(f"duplicate definition of {d.name!r}")
            if d.name in PRIMITIVES:
                raise ValidationError(
                    f"function {d.name!r} shadows a primitive")
            seen.add(d.name)
        functions = self.functions()
        for d in self.defs:
            if len(set(d.params)) != len(d.params):
                raise ValidationError(
                    f"{d.name}: duplicate parameter names {d.params}")
            _check_expr(d.body, set(d.params), functions,
                        allow_higher_order, where=d.name)

    def __str__(self) -> str:
        from repro.lang.pretty import pretty_program
        return pretty_program(self)


def _check_expr(expr: Expr, scope: set[str],
                functions: dict[str, FunDef],
                allow_higher_order: bool, where: str) -> None:
    if isinstance(expr, Const):
        return
    if isinstance(expr, Var):
        if expr.name not in scope:
            if expr.name in functions:
                if not allow_higher_order:
                    raise ValidationError(
                        f"{where}: first-class reference to function "
                        f"{expr.name!r} in a first-order program")
                return
            raise ValidationError(
                f"{where}: unbound variable {expr.name!r}")
        return
    if isinstance(expr, Prim):
        prim = PRIMITIVES.get(expr.op)
        if prim is None:
            raise ValidationError(f"{where}: unknown primitive {expr.op!r}")
        if prim.arity != len(expr.args):
            raise ValidationError(
                f"{where}: primitive {expr.op} expects {prim.arity} "
                f"arguments, got {len(expr.args)}")
        for arg in expr.args:
            _check_expr(arg, scope, functions, allow_higher_order, where)
        return
    if isinstance(expr, Call):
        target = functions.get(expr.fn)
        if target is None:
            raise ValidationError(
                f"{where}: call to unknown function {expr.fn!r}")
        if target.arity != len(expr.args):
            raise ValidationError(
                f"{where}: {expr.fn} expects {target.arity} arguments, "
                f"got {len(expr.args)}")
        for arg in expr.args:
            _check_expr(arg, scope, functions, allow_higher_order, where)
        return
    if isinstance(expr, If):
        for child in expr.children():
            _check_expr(child, scope, functions, allow_higher_order, where)
        return
    if isinstance(expr, Let):
        _check_expr(expr.bound, scope, functions, allow_higher_order, where)
        _check_expr(expr.body, scope | {expr.name}, functions,
                    allow_higher_order, where)
        return
    if isinstance(expr, Lam):
        if not allow_higher_order:
            raise ValidationError(
                f"{where}: lambda in a first-order program")
        if len(set(expr.params)) != len(expr.params):
            raise ValidationError(
                f"{where}: duplicate lambda parameters {expr.params}")
        _check_expr(expr.body, scope | set(expr.params), functions,
                    allow_higher_order, where)
        return
    if isinstance(expr, App):
        if not allow_higher_order:
            raise ValidationError(
                f"{where}: higher-order application in a first-order "
                f"program")
        for child in expr.children():
            _check_expr(child, scope, functions, allow_higher_order, where)
        return
    raise ValidationError(f"{where}: unknown expression node {expr!r}")


def is_first_order(program: Program) -> bool:
    """True if the program uses no lambda, application or first-class
    function references — the fragment Figures 1-4 are defined on."""
    functions = program.functions()
    for d in program.defs:
        bound = set(d.params)
        for node in walk(d.body):
            if isinstance(node, (Lam, App)):
                return False
            if isinstance(node, Let):
                bound.add(node.name)
        for node in walk(d.body):
            if isinstance(node, Var) and node.name in functions \
                    and node.name not in bound:
                return False
    return True
