"""Pretty-printer producing surface syntax that re-parses to the same AST.

``parse_program(pretty_program(p))`` is the identity on validated
first-order and higher-order programs (modulo ``let`` re-nesting, which is
syntactically identical), a property the round-trip tests check.
"""

from __future__ import annotations

from repro.lang.ast import (
    App, Call, Const, Expr, FunDef, If, Lam, Let, Prim, Var)
from repro.lang.program import Program
from repro.lang.values import format_value

_INDENT = "  "


def pretty(expr: Expr) -> str:
    """Render an expression on one line."""
    if isinstance(expr, Const):
        return format_value(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Prim):
        return _call_like(expr.op, expr.args)
    if isinstance(expr, Call):
        return _call_like(expr.fn, expr.args)
    if isinstance(expr, If):
        return (f"(if {pretty(expr.test)} {pretty(expr.then)} "
                f"{pretty(expr.else_)})")
    if isinstance(expr, Let):
        return (f"(let (({expr.name} {pretty(expr.bound)})) "
                f"{pretty(expr.body)})")
    if isinstance(expr, Lam):
        params = " ".join(expr.params)
        return f"(lambda ({params}) {pretty(expr.body)})"
    if isinstance(expr, App):
        parts = " ".join(pretty(a) for a in expr.args)
        suffix = f" {parts}" if parts else ""
        return f"({pretty(expr.fn)}{suffix})"
    raise TypeError(f"not an expression: {expr!r}")


def _call_like(head: str, args: tuple[Expr, ...]) -> str:
    parts = " ".join(pretty(a) for a in args)
    return f"({head} {parts})" if parts else f"({head})"


def pretty_indented(expr: Expr, width: int = 72) -> str:
    """Render an expression over multiple lines when it would overflow
    ``width`` columns."""
    return _indented(expr, 0, width)


def _indented(expr: Expr, depth: int, width: int) -> str:
    flat = pretty(expr)
    if len(flat) + depth * len(_INDENT) <= width:
        return flat
    pad = _INDENT * (depth + 1)
    if isinstance(expr, If):
        return (f"(if {_indented(expr.test, depth + 1, width)}\n"
                f"{pad}{_indented(expr.then, depth + 1, width)}\n"
                f"{pad}{_indented(expr.else_, depth + 1, width)})")
    if isinstance(expr, Let):
        return (f"(let (({expr.name} "
                f"{_indented(expr.bound, depth + 2, width)}))\n"
                f"{pad}{_indented(expr.body, depth + 1, width)})")
    if isinstance(expr, Lam):
        params = " ".join(expr.params)
        return (f"(lambda ({params})\n"
                f"{pad}{_indented(expr.body, depth + 1, width)})")
    if isinstance(expr, (Prim, Call, App)):
        if isinstance(expr, Prim):
            head = expr.op
            args = expr.args
        elif isinstance(expr, Call):
            head = expr.fn
            args = expr.args
        else:
            head = _indented(expr.fn, depth + 1, width)
            args = expr.args
        rendered = [f"({head}"]
        for arg in args:
            rendered.append(f"\n{pad}{_indented(arg, depth + 1, width)}")
        return "".join(rendered) + ")"
    return flat


def pretty_def(fundef: FunDef, width: int = 72) -> str:
    """Render one top-level definition."""
    header = " ".join((fundef.name,) + fundef.params)
    body = _indented(fundef.body, 1, width)
    flat = f"(define ({header}) {pretty(fundef.body)})"
    if len(flat) <= width:
        return flat
    return f"(define ({header})\n{_INDENT}{body})"


def pretty_program(program: Program, width: int = 72) -> str:
    """Render a whole program, one definition per paragraph."""
    return "\n\n".join(pretty_def(d, width) for d in program.defs) + "\n"
