"""Exception hierarchy for the object language.

Every error raised by the language substrate (lexer, parser, validator,
interpreter) derives from :class:`LangError`, so callers can catch one type.
The partial evaluators reuse :class:`EvalError` for errors raised while
reducing static subexpressions, which lets them distinguish "the static part
of the program is broken" from bugs in the specializer itself.

The hierarchy is rooted in the engine-wide failure taxonomy of
:mod:`repro.engine.errors`: a :class:`LangError` is a
:class:`~repro.engine.errors.ProgramError` (the subject program is at
fault), and :class:`PEError` additionally sits under
:class:`~repro.engine.errors.SpecializationError` for compatibility —
it historically covered both program-side and specializer-side
failures.  Catching ``ReproError`` therefore catches everything.
"""

from __future__ import annotations

from repro.engine.errors import (
    FacetError, ProgramError, SpecializationError)


class LangError(ProgramError):
    """Base class of all object-language errors."""


class LexError(LangError):
    """Raised on malformed input at the token level.

    Carries the 1-based ``line`` and ``column`` of the offending character.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class ParseError(LangError):
    """Raised on structurally malformed programs (bad s-expressions,
    wrong ``define`` shape, unknown special form arity, ...)."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        location = "" if line is None else f"{line}:{column}: "
        super().__init__(f"{location}{message}")
        self.line = line
        self.column = column


class ValidationError(LangError):
    """Raised by :func:`repro.lang.program.Program.validate` on semantic
    problems: unbound variables, unknown functions or primitives, arity
    mismatches, duplicate definitions."""


class EvalError(LangError):
    """Raised by the standard interpreter on runtime errors: type errors
    at primitive applications, division by zero, vector index out of
    range."""


class FuelExhausted(EvalError):
    """Raised when the interpreter's step budget is exhausted.

    The standard semantics of Figure 1 is defined on a cpo and simply does
    not terminate for divergent programs; operationally we bound the number
    of function calls so tests and property checks can treat divergence as
    an observable outcome (the paper's theorems all hold "modulo
    termination").
    """


class PEError(LangError, SpecializationError):
    """Base class for partial-evaluation errors (both specializers)."""


class ConsistencyError(PEError, FacetError):
    """Raised when a product of facet values violates Definition 6, i.e.
    the facet components describe disjoint sets of concrete values."""


class UnfoldLimitExceeded(PEError):
    """Raised internally when the online specializer's unfold fuel runs
    out; callers normally never see it because the specializer falls back
    to residualizing a specialized call."""
