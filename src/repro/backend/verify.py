"""Shadow-verified execution: compiled and interpreted, side by side.

``shadow`` is the backend you run when you want the compiled engine's
answer but are not yet ready to trust it: every call runs the residual
through *both* engines and any divergence raises
:class:`ShadowMismatch` (a
:class:`~repro.engine.errors.SpecializationError` — a divergence means
the backend, not the subject program, is broken).  Comparisons are
counted in :class:`~repro.observability.backend_stats.BackendStats`,
which the ``--profile`` report surfaces as ``stats.backend``; the
acceptance bar is ``mismatches == 0`` across the differential and
golden suites.

Agreement rules:

* the interpreter runs *first*; if it exhausts its fuel the comparison
  is inconclusive (the compiled engine has no step counter — running
  it against a program the oracle could not finish risks divergence,
  the operational reading of bottom) and the interpreter's
  :class:`~repro.lang.errors.FuelExhausted` propagates;
* errors agree when both engines raise the same taxonomy category
  (:func:`repro.engine.errors.classify`) — message texts are allowed
  to differ, classes are not;
* values agree under :func:`repro.lang.values.values_approx_equal`
  (both engines apply the identical primitive implementations, so
  floats are in practice bit-equal; the tolerance only guards
  platform-level libm drift);
* functional values (the interpreter's closures vs the backend's
  :class:`~repro.backend.runtime.CompiledClosure`) agree when both
  sides are functional with the same arity — Figure 1 gives programs
  no way to observe more of a function than applying it.
"""

from __future__ import annotations

from typing import Sequence

from repro.backend.emit import CompiledProgram, compile_program
from repro.backend.runtime import CompiledClosure
from repro.engine.errors import ReproError, SpecializationError, classify
from repro.lang.errors import FuelExhausted
from repro.lang.interp import DEFAULT_FUEL, Closure, FunRef, Interpreter
from repro.lang.program import Program
from repro.lang.values import Value, format_value, values_approx_equal
from repro.observability.backend_stats import BackendStats

#: Execution engines the CLI/service accept.
BACKENDS = ("interp", "compiled", "shadow")


class ShadowMismatch(SpecializationError):
    """The compiled and interpreted engines disagreed on a residual."""

    def __init__(self, goal: str, args: Sequence[Value],
                 interp_outcome: str, compiled_outcome: str) -> None:
        rendered = ", ".join(_render_arg(a) for a in args)
        super().__init__(
            f"backend: shadow divergence on {goal}({rendered}): "
            f"interpreter {interp_outcome}, compiled {compiled_outcome}")
        self.goal = goal
        self.interp_outcome = interp_outcome
        self.compiled_outcome = compiled_outcome


def _render_arg(value: object) -> str:
    try:
        return format_value(value)
    except ReproError:
        return repr(value)


def _is_functional(value: object) -> bool:
    return isinstance(value, (Closure, FunRef, CompiledClosure))


def _functional_arity(value: object, program: Program) -> int:
    if isinstance(value, CompiledClosure):
        return value.arity
    if isinstance(value, Closure):
        return len(value.params)
    if isinstance(value, FunRef):
        target = program.functions().get(value.name)
        return target.arity if target is not None else -1
    raise TypeError(f"not a functional value: {value!r}")


def _agree(interp_value: object, compiled_value: object,
           program: Program) -> bool:
    if _is_functional(interp_value) or _is_functional(compiled_value):
        return (_is_functional(interp_value)
                and _is_functional(compiled_value)
                and (_functional_arity(interp_value, program)
                     == _functional_arity(compiled_value, program)))
    return values_approx_equal(interp_value, compiled_value)


def _describe(error: ReproError | None, value: object,
              program: Program) -> str:
    if error is not None:
        return f"raised {type(error).__name__} ({classify(error)})"
    if _is_functional(value):
        arity = _functional_arity(value, program)
        return f"returned a function of arity {arity}"
    return f"returned {_render_arg(value)}"


def shadow_run(program: Program, args: Sequence[Value], *,
               compiled: CompiledProgram | None = None,
               fuel: int = DEFAULT_FUEL,
               stats: BackendStats | None = None) -> Value:
    """Run ``program`` through both engines and compare.

    Returns the (verified) value, re-raises the (verified) program
    error, or raises :class:`ShadowMismatch` on divergence.
    """
    if stats is not None:
        stats.shadow_runs += 1

    interp_error: ReproError | None = None
    interp_value: object = None
    try:
        interp_value = Interpreter(program, fuel=fuel).run(*args)
    except FuelExhausted:
        # The oracle could not finish: no verdict, and running the
        # compiled engine (which has no fuel) could simply not return.
        if stats is not None:
            stats.shadow_inconclusive += 1
        raise
    except ReproError as exc:
        interp_error = exc

    if compiled is None:
        compiled = compile_program(program)
        if stats is not None:
            stats.compiles += 1

    compiled_error: ReproError | None = None
    compiled_value: object = None
    try:
        compiled_value = compiled.run(*args)
        if stats is not None:
            stats.compiled_runs += 1
    except FuelExhausted:
        if stats is not None:
            stats.shadow_inconclusive += 1
        raise
    except ReproError as exc:
        compiled_error = exc

    if interp_error is not None or compiled_error is not None:
        agreed = (interp_error is not None
                  and compiled_error is not None
                  and classify(interp_error) == classify(compiled_error))
    else:
        agreed = _agree(interp_value, compiled_value, program)

    if not agreed:
        if stats is not None:
            stats.mismatches += 1
        raise ShadowMismatch(
            program.main.name, args,
            _describe(interp_error, interp_value, program),
            _describe(compiled_error, compiled_value, program))

    if compiled_error is not None:
        raise compiled_error
    return compiled_value


def execute_program(program: Program, args: Sequence[Value], *,
                    backend: str = "interp",
                    compiled: CompiledProgram | None = None,
                    fuel: int = DEFAULT_FUEL,
                    stats: BackendStats | None = None) -> Value:
    """Run a program's goal function through the chosen engine.

    The one entry point the CLI paths share, so ``--backend`` means
    the same thing everywhere.
    """
    if backend == "interp":
        return Interpreter(program, fuel=fuel).run(*args)
    if backend == "compiled":
        if compiled is None:
            compiled = compile_program(program)
            if stats is not None:
                stats.compiles += 1
        value = compiled.run(*args)
        if stats is not None:
            stats.compiled_runs += 1
        return value
    if backend == "shadow":
        return shadow_run(program, args, compiled=compiled, fuel=fuel,
                          stats=stats)
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}")
