"""Native-code backend: residual programs compiled to Python.

The paper's payoff (Theorem 1, Figure 3) is that specialization makes
*programs* faster — yet every residual in this repo historically ran
through the tree-walking interpreter of :mod:`repro.lang.interp`, so
the speedup benchmarks could only compare step counts inside the same
evaluator.  This package adds the missing codegen stage:

* :mod:`repro.backend.lower` — lowers ``lang.ast`` expressions to
  Python source (name mangling, ``let`` → assignment, first-order
  self/mutual tail recursion → loops, ``lambda``/``App`` → closures);
* :mod:`repro.backend.emit` — compiles the lowered source into a
  :class:`~repro.backend.emit.CompiledProgram` with callable entry
  points and a content fingerprint;
* :mod:`repro.backend.runtime` — the thin bridge keeping compiled
  semantics aligned with :mod:`repro.lang.primitives`, mapping runtime
  faults into the :mod:`repro.engine.errors` taxonomy;
* :mod:`repro.backend.verify` — a shadow mode running compiled and
  interpreted residuals side by side, raising
  :class:`~repro.backend.verify.ShadowMismatch` on any divergence.

Compiled programs implement exactly the standard semantics of
Figure 1: same values, same error taxonomy (division by zero, bad
vector accesses, wrong-arity closure application and unbound variables
all raise the same :class:`~repro.engine.errors.ReproError` subclass as
the interpreter), which ``tests/backend/`` pins differentially.
"""

from repro.backend.emit import (
    CompiledProgram, compile_artifact, compile_program)
from repro.backend.lower import LoweredProgram, lower_program
from repro.backend.verify import (
    BACKENDS, ShadowMismatch, execute_program, shadow_run)

__all__ = [
    "BACKENDS", "CompiledProgram", "LoweredProgram", "ShadowMismatch",
    "compile_artifact", "compile_program", "execute_program",
    "lower_program", "shadow_run",
]
