"""Lowering: residual ``lang.ast`` programs to Python source.

The translation is semantics-preserving by construction against the
standard semantics of Figure 1 (operationally:
:class:`repro.lang.interp.Interpreter`):

* **names** are mangled deterministically (``_f_`` for functions,
  ``_v_`` for variables) so any symbol the s-expression reader accepts
  (``f!6``, ``<=``, ``a-b``) becomes a valid, collision-free Python
  identifier;
* **let** becomes assignment, with fresh Python names for shadowing
  rebindings so an outer binding survives an inner ``let`` of the same
  source name;
* **first-order self tail recursion** becomes a ``while True`` loop
  (parallel parameter rebinding + ``continue``), and **mutual tail
  recursion** — detected as a strongly connected component of the
  tail-call graph — becomes a trampoline: group members return
  :class:`repro.backend.runtime.Bounce` markers their public wrappers
  keep bouncing, so ``step``/``dispatch`` style residuals run in
  constant Python stack;
* **lambda** becomes a nested ``def`` whose captured free variables
  are snapshotted through keyword-only default arguments (the loop
  conversion above rebinds parameters in place, so a late-bound Python
  cell would observe values the interpreter's environment-capturing
  closures never see); **application** goes through
  :func:`repro.backend.runtime.apply_value`, which reproduces the
  interpreter's arity and non-function error behaviour;
* **primitives** compile to direct calls of the checking
  implementations in :data:`repro.lang.primitives.PRIMITIVES` — the
  same ``K_p`` the interpreter applies, so values *and* errors agree;
* **conditionals** branch on ``is True`` / ``is False`` and route
  anything else to :func:`repro.backend.runtime.bad_test`, matching
  the interpreter's strict-Bool conditional;
* **invalid programs** (unbound variables, unknown functions, bad call
  arities) lower to code that raises the interpreter's exact
  :class:`~repro.lang.errors.EvalError` at the evaluation step that
  would have tripped it — never at import time — which is what the
  error-parity suite pins.

Expressions lower in a statement-oriented style: an expression either
renders as a Python expression or drains its ``let`` / ``if`` /
``lambda`` substructure into fresh ``_t`` temporaries first.  When a
later sibling in an argument list needs statements, already-rendered
earlier siblings are spilled to temporaries *above* those statements,
so evaluation stays exactly left-to-right strict even across the
statement/expression boundary.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.lang.ast import (
    App, Call, Const, Expr, FunDef, If, Lam, Let, Prim, Var, free_vars)
from repro.lang.program import Program
from repro.lang.values import Vector

_INDENT = "    "

#: Friendly Python spellings for symbolic primitive names; anything
#: not listed keeps its (sanitized) own name.
_PRIM_FRIENDLY = {
    "+": "add", "-": "sub", "*": "mul", "/": "fdiv",
    "=": "eq", "!=": "ne", "<": "lt", "<=": "le",
    ">": "gt", ">=": "ge", "and": "and_", "or": "or_", "not": "not_",
}

_SANITIZE = re.compile(r"[^0-9A-Za-z_]")
_ATOMIC = re.compile(r"^(?:[_A-Za-z][_A-Za-z0-9]*|-?[0-9][0-9_]*"
                     r"(?:\.[0-9]*)?(?:e[+-]?[0-9]+)?)$")


def prim_runtime_name(op: str) -> str:
    """The module-global name a primitive's implementation is bound to
    in emitted code (see :func:`repro.backend.runtime.runtime_globals`)."""
    return "_p_" + _PRIM_FRIENDLY.get(op, _SANITIZE.sub("_", op))


def _sanitize(name: str) -> str:
    text = _SANITIZE.sub("_", name)
    return text if text else "anon"


class _Names:
    """Deterministic, collision-free name allocation for one scope."""

    def __init__(self) -> None:
        self._by_source: dict[tuple[str, str], str] = {}
        self._taken: set[str] = set()

    def allocate(self, prefix: str, source: str) -> str:
        """A fresh Python name for ``source``; repeated requests for
        the same source name get fresh names too (``let`` shadowing
        wants a new binding, not the old one)."""
        base = f"{prefix}{_sanitize(source)}"
        candidate = base
        index = 1
        while candidate in self._taken:
            index += 1
            candidate = f"{base}_{index}"
        self._taken.add(candidate)
        return candidate

    def lookup_or_allocate(self, prefix: str, source: str) -> str:
        """A stable Python name for ``source`` (functions: every call
        site must agree on the spelling)."""
        key = (prefix, source)
        name = self._by_source.get(key)
        if name is None:
            name = self.allocate(prefix, source)
            self._by_source[key] = name
        return name


# ---------------------------------------------------------------------------
# Tail-call analysis
# ---------------------------------------------------------------------------

def _tail_calls(expr: Expr) -> frozenset[str]:
    """Names of functions called (via :class:`Call`) in tail position
    of ``expr``.  Lambda bodies are separate functions, so they do not
    contribute tail positions of the enclosing definition."""
    if isinstance(expr, Call):
        return frozenset((expr.fn,))
    if isinstance(expr, If):
        return _tail_calls(expr.then) | _tail_calls(expr.else_)
    if isinstance(expr, Let):
        return _tail_calls(expr.body)
    return frozenset()


def _tail_sccs(program: Program) -> list[frozenset[str]]:
    """Strongly connected components of the tail-call graph, via an
    iterative Tarjan (polyvariant residuals can define many variants)."""
    defined = {d.name for d in program.defs}
    edges = {d.name: sorted(_tail_calls(d.body) & defined)
             for d in program.defs}
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[frozenset[str]] = []
    counter = 0
    for root in edges:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child = work[-1]
            if child == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            for position in range(child, len(edges[node])):
                successor = edges[node][position]
                if successor not in index:
                    work[-1] = (node, position + 1)
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index[successor])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(frozenset(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


# ---------------------------------------------------------------------------
# Per-function lowering
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _FnCtx:
    """Tail-position compilation context of one definition."""

    name: str
    params: tuple[str, ...]     # Python parameter names, in order
    loop: bool                  # self tail calls become continue
    group: frozenset[str]       # trampolined SCC members (may be empty)
    impl_names: dict[str, str]  # SCC member -> impl function name


@dataclass
class LoweredProgram:
    """The result of lowering: Python source plus the entry map."""

    source: str
    #: Source function name -> (public Python name, arity).
    entries: dict[str, tuple[str, int]]
    goal: str


class _Lowerer:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.functions = program.functions()
        self.module_names = _Names()
        self.lines: list[str] = []
        self._temp = 0
        self._lam = 0
        self._locals: _Names | None = None

    # -- small helpers -------------------------------------------------
    def emit(self, indent: int, text: str) -> None:
        self.lines.append(f"{_INDENT * indent}{text}")

    def fresh_temp(self) -> str:
        self._temp += 1
        return f"_t{self._temp}"

    def fresh_lam(self) -> str:
        self._lam += 1
        return f"_lam{self._lam}"

    def fn_name(self, source: str) -> str:
        return self.module_names.lookup_or_allocate("_f_", source)

    def impl_name(self, source: str) -> str:
        return self.module_names.lookup_or_allocate("_i_", source)

    def local(self, source: str) -> str:
        assert self._locals is not None
        return self._locals.allocate("_v_", source)

    # -- program -------------------------------------------------------
    def lower(self) -> LoweredProgram:
        groups = {scc: {member: self.impl_name(member) for member in scc}
                  for scc in _tail_sccs(self.program) if len(scc) > 1}
        group_of: dict[str, tuple[frozenset[str], dict[str, str]]] = {}
        for scc, impls in groups.items():
            for member in scc:
                group_of[member] = (scc, impls)

        main = self.program.main
        self.emit(0, "# Python residual emitted by repro.backend "
                     "(PPE compiled backend).")
        self.emit(0, f"# goal: {main.name}/{main.arity}")
        entries: dict[str, tuple[str, int]] = {}
        for fundef in self.program.defs:
            self.emit(0, "")
            self.emit(0, "")
            public = self.fn_name(fundef.name)
            entries[fundef.name] = (public, fundef.arity)
            group, impls = group_of.get(fundef.name, (frozenset(), {}))
            self._lower_fundef(fundef, public, group, impls)
        return LoweredProgram(source="\n".join(self.lines) + "\n",
                              entries=entries, goal=main.name)

    def _lower_fundef(self, fundef: FunDef, public: str,
                      group: frozenset[str],
                      impls: dict[str, str]) -> None:
        self._locals = _Names()
        self._temp = 0
        params = tuple(self.local(p) for p in fundef.params)
        env = dict(zip(fundef.params, params))
        loop = fundef.name in _tail_calls(fundef.body)
        ctx = _FnCtx(name=fundef.name, params=params, loop=loop,
                     group=group, impl_names=impls)

        body_name = impls.get(fundef.name, public)
        self.emit(0, f"def {body_name}({', '.join(params)}):")
        indent = 1
        if loop:
            self.emit(indent, "while True:")
            indent += 1
        self.tail(fundef.body, env, ctx, indent)

        if fundef.name in impls:
            # The public wrapper: drive the mutual-tail-call
            # trampoline until a non-Bounce value comes back.
            self.emit(0, "")
            self.emit(0, "")
            self.emit(0, f"def {public}({', '.join(params)}):")
            self.emit(1, f"_r = {body_name}({', '.join(params)})")
            self.emit(1, "while _r.__class__ is _rt_Bounce:")
            self.emit(2, "_r = _r.fn(*_r.args)")
            self.emit(1, "return _r")
        self._locals = None

    # -- expressions ---------------------------------------------------
    def expr(self, e: Expr, env: dict[str, str], indent: int) -> str:
        """Render ``e`` as a Python expression, draining any ``let`` /
        ``if`` substructure into statements first."""
        if isinstance(e, Const):
            return self.const(e.value)
        if isinstance(e, Var):
            name = env.get(e.name)
            if name is not None:
                return name
            target = self.functions.get(e.name)
            if target is not None:
                # A first-class reference to a top-level function
                # (the interpreter's FunRef).
                return (f"_rt_close({self.fn_name(e.name)}, "
                        f"{target.arity}, {e.name!r})")
            return f"_rt_unbound({e.name!r})"
        if isinstance(e, Prim):
            args = self.expr_seq(e.args, env, indent)
            return f"{prim_runtime_name(e.op)}({', '.join(args)})"
        if isinstance(e, Call):
            return self.call_expr(e, env, indent)
        if isinstance(e, App):
            fn, *args = self.expr_seq([e.fn, *e.args], env, indent)
            joined = ", ".join(args)
            comma = "," if len(args) == 1 else ""
            return f"_rt_apply({fn}, ({joined}{comma}))"
        if isinstance(e, Lam):
            return self.lam_expr(e, env, indent)
        # Let / If: drain into a temporary.
        target = self.fresh_temp()
        self.assign(e, env, target, indent)
        return target

    def expr_seq(self, exprs: list[Expr], env: dict[str, str],
                 indent: int) -> list[str]:
        """Render a left-to-right argument list.

        If lowering a later sibling emits statements (it contained a
        ``let`` or ``if``), earlier siblings whose rendering is not an
        atomic load are spilled to temporaries inserted *above* those
        statements — otherwise Python would evaluate them after the
        sibling's statements, breaking strict left-to-right error
        order.
        """
        rendered: list[str] = []
        for e in exprs:
            mark = len(self.lines)
            text = self.expr(e, env, indent)
            if len(self.lines) > mark:
                spills: list[str] = []
                for i, prev in enumerate(rendered):
                    if not _ATOMIC.match(prev):
                        temp = self.fresh_temp()
                        spills.append(f"{_INDENT * indent}{temp} = {prev}")
                        rendered[i] = temp
                self.lines[mark:mark] = spills
            rendered.append(text)
        return rendered

    def call_expr(self, e: Call, env: dict[str, str],
                  indent: int) -> str:
        target = self.functions.get(e.fn)
        args = self.expr_seq(e.args, env, indent)
        joined = ", ".join(args)
        if target is None or target.arity != len(e.args):
            # Invalid call: evaluate the arguments first (the
            # interpreter does), then raise its exact error.
            if args:
                comma = "," if len(args) == 1 else ""
                self.emit(indent,
                          f"{self.fresh_temp()} = ({joined}{comma})")
            if target is None:
                return f"_rt_unknown_fn({e.fn!r})"
            return f"_rt_bad_call({e.fn!r}, {target.arity}, {len(e.args)})"
        return f"{self.fn_name(e.fn)}({joined})"

    def lam_expr(self, e: Lam, env: dict[str, str],
                 indent: int) -> str:
        """A nested ``def`` with keyword-only default snapshots of the
        captured environment (see the module docstring on why a plain
        Python closure cell would be wrong under loop conversion)."""
        name = self.fresh_lam()
        captured = sorted(n for n in free_vars(e) if n in env)
        saved = self._locals
        self._locals = _Names()
        try:
            cap_names = {n: self._locals.allocate("_c_", n)
                         for n in captured}
            params = [self.local(p) for p in e.params]
            scope = dict(cap_names)
            scope.update(zip(e.params, params))
            signature = ", ".join(params)
            if captured:
                snapshots = ", ".join(f"{cap_names[n]}={env[n]}"
                                      for n in captured)
                star = f"{signature}, *, " if signature else "*, "
                signature = star + snapshots
            self.emit(indent, f"def {name}({signature}):")
            ctx = _FnCtx(name="<lambda>", params=tuple(params),
                         loop=False, group=frozenset(), impl_names={})
            self.tail(e.body, scope, ctx, indent + 1)
        finally:
            self._locals = saved
        return f"_rt_close({name}, {len(e.params)})"

    def const(self, value: object) -> str:
        if isinstance(value, bool):
            return "True" if value else "False"
        if isinstance(value, float):
            return _float_literal(value)
        if isinstance(value, int):
            return repr(value)
        if isinstance(value, Vector):
            items = ", ".join("None" if item is None
                              else _float_literal(item)
                              for item in value.items)
            comma = "," if len(value.items) == 1 else ""
            return f"_rt_vec(({items}{comma}))"
        raise TypeError(f"cannot lower constant {value!r}")

    # -- statements ----------------------------------------------------
    def assign(self, e: Expr, env: dict[str, str], target: str,
               indent: int) -> None:
        """Emit statements computing ``e`` into ``target``."""
        if isinstance(e, If):
            test = self.test_temp(e, env, indent)
            self.emit(indent, f"if {test} is True:")
            self.assign(e.then, env, target, indent + 1)
            self.emit(indent, f"elif {test} is False:")
            self.assign(e.else_, env, target, indent + 1)
            self.emit(indent, "else:")
            self.emit(indent + 1, f"_rt_bad_test({test})")
            return
        if isinstance(e, Let):
            inner = self.let_bind(e, env, indent)
            self.assign(e.body, inner, target, indent)
            return
        self.emit(indent, f"{target} = {self.expr(e, env, indent)}")

    def tail(self, e: Expr, env: dict[str, str], ctx: _FnCtx,
             indent: int) -> None:
        """Emit statements for ``e`` in tail position: every path ends
        in ``return``, ``continue`` (self tail call) or a trampoline
        bounce (mutual tail call)."""
        if isinstance(e, If):
            test = self.test_temp(e, env, indent)
            self.emit(indent, f"if {test} is True:")
            self.tail(e.then, env, ctx, indent + 1)
            self.emit(indent, f"elif {test} is False:")
            self.tail(e.else_, env, ctx, indent + 1)
            self.emit(indent, "else:")
            self.emit(indent + 1, f"_rt_bad_test({test})")
            return
        if isinstance(e, Let):
            inner = self.let_bind(e, env, indent)
            self.tail(e.body, inner, ctx, indent)
            return
        if isinstance(e, Call):
            target = self.functions.get(e.fn)
            if target is not None and target.arity == len(e.args):
                if e.fn == ctx.name and ctx.loop:
                    args = self.expr_seq(e.args, env, indent)
                    if args:
                        self.emit(indent,
                                  f"{', '.join(ctx.params)} = "
                                  f"{', '.join(args)}")
                    self.emit(indent, "continue")
                    return
                if e.fn in ctx.group:
                    args = self.expr_seq(e.args, env, indent)
                    joined = ", ".join(args)
                    comma = "," if len(args) == 1 else ""
                    self.emit(indent,
                              f"return _rt_Bounce({ctx.impl_names[e.fn]}, "
                              f"({joined}{comma}))")
                    return
        self.emit(indent, f"return {self.expr(e, env, indent)}")

    def test_temp(self, e: If, env: dict[str, str],
                  indent: int) -> str:
        """The scrutinee, pinned to a name so the ``is True`` /
        ``is False`` pair evaluates it exactly once."""
        rendered = self.expr(e.test, env, indent)
        if _ATOMIC.match(rendered):
            return rendered
        temp = self.fresh_temp()
        self.emit(indent, f"{temp} = {rendered}")
        return temp

    def let_bind(self, e: Let, env: dict[str, str],
                 indent: int) -> dict[str, str]:
        pyname = self.local(e.name)
        self.assign(e.bound, env, pyname, indent)
        inner = dict(env)
        inner[e.name] = pyname
        return inner


def _float_literal(value: float) -> str:
    """A float literal valid in a namespace with no builtins (the
    specializer can constant-fold an overflow into ``inf``)."""
    if value != value:
        return "_rt_nan"
    if value == math.inf:
        return "_rt_inf"
    if value == -math.inf:
        return "(-_rt_inf)"
    return repr(value)


def lower_program(program: Program) -> LoweredProgram:
    """Lower a whole program to Python source plus its entry map."""
    return _Lowerer(program).lower()
