"""Emission: lowered Python source to executable code objects.

:func:`compile_program` drives the whole pipeline —
:func:`repro.backend.lower.lower_program`, Python's builtin
``compile()``, then ``exec`` into the runtime namespace of
:func:`repro.backend.runtime.runtime_globals` — and wraps the result in
a :class:`CompiledProgram` with callable entry points for every
definition and a content fingerprint (SHA-256 of the emitted source).

:meth:`CompiledProgram.artifact` renders the unit as a plain-strings
dict the service cache can store next to a residual;
:func:`compile_artifact` rehydrates one without re-lowering, which is
what amortizes compilation cost across requests.

The error contract mirrors the interpreter's
:meth:`~repro.lang.interp.Interpreter.run`:

* object-language faults surface as the taxonomy classes the runtime
  bridge raises (:class:`~repro.lang.errors.EvalError` and friends —
  all :class:`~repro.engine.errors.ProgramError`);
* blowing the host recursion budget (deep *non-tail* object-language
  recursion nests Python frames) is reported as
  :class:`~repro.lang.errors.FuelExhausted`, the resource-limit view
  of divergence;
* anything else escaping compiled code would be a lowering bug and is
  wrapped as :class:`~repro.engine.errors.SpecializationError` — the
  engine, not the subject program, is at fault.
"""

from __future__ import annotations

import hashlib
import sys
from typing import Sequence

from repro.backend.lower import LoweredProgram, lower_program
from repro.backend.runtime import runtime_globals
from repro.engine.errors import ReproError, SpecializationError
from repro.lang.errors import EvalError, FuelExhausted
from repro.lang.program import Program
from repro.lang.values import Value


def fingerprint_source(python_source: str) -> str:
    """Content fingerprint of an emitted module (SHA-256 hex)."""
    return hashlib.sha256(python_source.encode("utf-8")).hexdigest()


class CompiledProgram:
    """An executed compilation unit: one residual program, natively.

    ``call(name, args)`` / ``run(*args)`` follow the interpreter's
    calling convention (positional object-language values in, one value
    out) so the two engines are drop-in replacements for each other.
    """

    def __init__(self, lowered: LoweredProgram, namespace: dict,
                 program: Program | None = None) -> None:
        self.program = program
        self.lowered = lowered
        self.fingerprint = fingerprint_source(lowered.source)
        self._namespace = namespace
        self._entries = {
            name: (namespace[python_name], arity)
            for name, (python_name, arity) in lowered.entries.items()
        }

    @property
    def python_source(self) -> str:
        return self.lowered.source

    def artifact(self) -> dict:
        """The cacheable, pickle/JSON-friendly form the service stores
        next to a residual: plain strings and ints only."""
        return {
            "fingerprint": self.fingerprint,
            "python": self.lowered.source,
            "goal": self.lowered.goal,
            "entries": {name: [python_name, arity]
                        for name, (python_name, arity)
                        in self.lowered.entries.items()},
        }

    def call(self, name: str, args: Sequence[Value]) -> Value:
        """Evaluate a named function on concrete arguments."""
        entry = self._entries.get(name)
        if entry is None:
            raise EvalError(f"call to unknown function {name!r}")
        fn, arity = entry
        if len(args) != arity:
            raise EvalError(
                f"{name}: expected {arity} arguments, got {len(args)}")
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 100_000))
        try:
            return fn(*args)
        except ReproError:
            raise
        except RecursionError:
            raise FuelExhausted(
                "evaluation exceeded the host recursion budget") \
                from None
        except Exception as exc:
            raise SpecializationError(
                f"backend: fault in compiled code for {name!r}: "
                f"{type(exc).__name__}: {exc}") from exc
        finally:
            sys.setrecursionlimit(old_limit)

    def run(self, *args: Value) -> Value:
        """Evaluate the goal function ``f_1`` on concrete arguments."""
        return self.call(self.lowered.goal, args)


def _execute(lowered: LoweredProgram,
             program: Program | None) -> CompiledProgram:
    try:
        code = compile(lowered.source, "<ppe-backend>", "exec")
        namespace = runtime_globals()
        exec(code, namespace)
        return CompiledProgram(lowered, namespace, program=program)
    except ReproError:
        raise
    except Exception as exc:
        raise SpecializationError(
            f"backend: failed to compile residual: "
            f"{type(exc).__name__}: {exc}") from exc


def compile_program(program: Program) -> CompiledProgram:
    """Lower, compile and execute ``program`` into a fresh namespace.

    Lowering or compiling can only fail on engine bugs (or residuals
    nested past CPython's parser limits), so failures are reported as
    :class:`~repro.engine.errors.SpecializationError`.
    """
    from repro.faults import fault_point
    try:
        fault_point("backend.compile")
        lowered = lower_program(program)
    except ReproError:
        raise
    except Exception as exc:
        raise SpecializationError(
            f"backend: failed to lower residual: "
            f"{type(exc).__name__}: {exc}") from exc
    return _execute(lowered, program)


def compile_artifact(artifact: dict) -> CompiledProgram:
    """Rehydrate a :meth:`CompiledProgram.artifact` (e.g. pulled out of
    the service cache) without re-lowering — that skip is the point of
    caching the artifact.

    The fingerprint is checked against the source; a mismatch means
    the artifact was corrupted in transit and is reported as
    :class:`~repro.engine.errors.SpecializationError`.
    """
    try:
        source = artifact["python"]
        goal = artifact["goal"]
        entries = {name: (python_name, int(arity))
                   for name, (python_name, arity)
                   in artifact["entries"].items()}
        claimed = artifact["fingerprint"]
    except (KeyError, TypeError, ValueError) as exc:
        raise SpecializationError(
            f"backend: malformed compiled artifact: {exc!r}") from exc
    if fingerprint_source(source) != claimed:
        raise SpecializationError(
            "backend: compiled artifact fingerprint mismatch")
    lowered = LoweredProgram(source=source, entries=entries, goal=goal)
    return _execute(lowered, None)
