"""Runtime bridge between emitted Python and the object language.

Emitted code never touches Python's own semantics for anything the
object language defines: every primitive application goes through the
checking implementations of :mod:`repro.lang.primitives` (the same
``K_p`` the interpreter applies), conditionals go through
:func:`bad_test` when the scrutinee is not a boolean, and higher-order
application goes through :func:`apply_value`.  That is what keeps the
compiled semantics — *including the error semantics* — aligned with
:class:`repro.lang.interp.Interpreter`: division by zero, bad vector
accesses, wrong-arity closure application and unbound variables raise
the same :class:`~repro.engine.errors.ReproError` subclass from both
engines (pinned by ``tests/backend/test_error_parity.py``).

:func:`runtime_globals` builds the module namespace emitted code runs
in; the names it binds are the only free names
:mod:`repro.backend.lower` ever emits.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.lang.errors import EvalError
from repro.lang.primitives import PRIMITIVES, Primitive
from repro.lang.values import Vector, sort_of


class CompiledClosure:
    """A compiled functional value: a Python callable plus the arity
    and error-reporting name the interpreter's :class:`Closure` /
    :class:`FunRef` semantics need."""

    __slots__ = ("fn", "arity", "name")

    def __init__(self, fn: Callable, arity: int,
                 name: str | None = None) -> None:
        self.fn = fn
        self.arity = arity
        self.name = name

    def __str__(self) -> str:
        if self.name is not None:
            return f"<function {self.name}>"
        return f"<closure/{self.arity}>"

    __repr__ = __str__


class Bounce:
    """Trampoline marker for mutual tail calls.

    A function in a mutually tail-recursive group returns
    ``Bounce(impl, args)`` instead of calling its sibling, and the
    group's public wrappers keep bouncing until a real value comes
    back — mutual tail recursion in constant Python stack, the moral
    equivalent of the self-recursive ``while`` loops.  Object-language
    values are never :class:`Bounce` instances, so the ``type(r) is
    Bounce`` test in emitted wrappers cannot misfire.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable, args: tuple) -> None:
        self.fn = fn
        self.args = args


def close(fn: Callable, arity: int,
          name: str | None = None) -> CompiledClosure:
    """Wrap a compiled function body as an object-language closure."""
    return CompiledClosure(fn, arity, name)


def apply_value(fn: object, args: tuple) -> object:
    """The ``App`` semantics: apply a functional value, with the
    interpreter's exact arity/type error behaviour."""
    if type(fn) is CompiledClosure:
        if len(args) != fn.arity:
            if fn.name is not None:
                raise EvalError(
                    f"{fn.name}: expected {fn.arity} arguments, "
                    f"got {len(args)}")
            raise EvalError(
                f"closure expects {fn.arity} arguments, "
                f"got {len(args)}")
        return fn.fn(*args)
    raise EvalError(f"cannot apply non-function {fn!r}")


def bad_test(value: object) -> None:
    """An ``if`` scrutinee that is not a boolean (Figure 1 makes the
    conditional strict in a Bool)."""
    raise EvalError("if: test did not produce a boolean")


def unbound(name: str) -> None:
    """An unbound variable reference, reported at the evaluation step
    that touches it — exactly when the interpreter would."""
    raise EvalError(f"unbound variable {name!r}")


def unknown_function(name: str) -> None:
    """A call to a function the program does not define."""
    raise EvalError(f"call to unknown function {name!r}")


def bad_call(name: str, want: int, got: int) -> None:
    """A first-order call with the wrong argument count (only
    reachable from unvalidated programs, like the interpreter's own
    arity check)."""
    raise EvalError(f"{name}: expected {want} arguments, got {got}")


def vector(items: Sequence[object]) -> Vector:
    """Rebuild a vector constant."""
    return Vector(tuple(items))


#: Concrete Python type(s) carrying each object-language sort.
_SORT_TYPES = {"int": int, "float": float, "bool": bool,
               "vector": Vector}


def checked_primitive(prim: Primitive) -> Callable:
    """``K_p`` as a standalone callable: the exact semantics of
    :func:`repro.lang.primitives.apply_primitive` — arity check,
    overload resolution over value sorts, then the implementation —
    with the registry lookup and the per-call signature scan hoisted
    out.  The hot path is one precomputed set lookup on the argument
    *type* tuple; everything else (wrong arity, exotic value
    subclasses, the error messages) takes the slow path below."""
    fn = prim.fn
    name = prim.name
    arity = prim.arity
    accepted_types = frozenset(
        tuple(_SORT_TYPES[sort] for sort in sig.arg_sorts)
        for sig in prim.sigs)
    accepted_sorts = frozenset(sig.arg_sorts for sig in prim.sigs)

    def slow_call(args: tuple) -> object:
        if len(args) != arity:
            raise EvalError(
                f"{name}: expected {arity} arguments, got {len(args)}")
        sorts = []
        for arg in args:
            if isinstance(arg, (bool, int, float, Vector)):
                sorts.append(sort_of(arg))
            else:
                # Matches the interpreter's is_value() guard on
                # primitive arguments.
                raise EvalError(
                    f"{name}: functional value passed to a primitive")
        if tuple(sorts) not in accepted_sorts:
            raise EvalError(f"{name}: no overload for argument sorts "
                            f"({', '.join(sorts)})")
        return fn(*args)

    def call(*args: object) -> object:
        if tuple(map(type, args)) in accepted_types:
            return fn(*args)
        return slow_call(args)

    return call


def runtime_globals() -> dict:
    """The namespace emitted modules execute in.

    Primitive implementations are bound as :func:`checked_primitive`
    wrappers over :data:`repro.lang.primitives.PRIMITIVES` — one
    global load and one call per application, no registry lookup and a
    set-membership overload check, yet byte-for-byte the same value
    and error semantics as ``apply_primitive``.
    """
    namespace: dict[str, object] = {
        "__builtins__": {},
        "_rt_close": close,
        "_rt_apply": apply_value,
        "_rt_bad_test": bad_test,
        "_rt_unbound": unbound,
        "_rt_unknown_fn": unknown_function,
        "_rt_bad_call": bad_call,
        "_rt_vec": vector,
        "_rt_Bounce": Bounce,
        # Non-finite float literals have no spelling in a namespace
        # with no builtins; the lowerer emits these names instead.
        "_rt_inf": math.inf,
        "_rt_nan": math.nan,
    }
    from repro.backend.lower import prim_runtime_name
    for name, primitive in PRIMITIVES.items():
        namespace[prim_runtime_name(name)] = checked_primitive(primitive)
    return namespace
