"""Per-phase wall-clock timers.

A :class:`PhaseTimer` accumulates ``perf_counter`` seconds under named
phases (parse / analyze / specialize / simplify).  Phases may repeat —
times accumulate — and may nest as long as the names differ.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator


class PhaseTimer:
    """Accumulating wall-clock timer keyed by phase name."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Merge externally measured time (e.g. a specializer's own
        ``phase_seconds``) into this timer."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds

    def total(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> dict:
        return {name: round(seconds, 6)
                for name, seconds in self.seconds.items()}
