"""Counters for the compiled backend.

One :class:`BackendStats` instance accompanies each CLI invocation or
service that executes residuals through :mod:`repro.backend`; the shadow
verifier (:func:`repro.backend.verify.shadow_run`) reports every
compiled-vs-interpreted comparison into it.  ``mismatches`` staying at
zero across the differential and golden suites is an acceptance
criterion of the backend, so the counter is first-class and lands in
the ``--profile`` report under ``stats.backend``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BackendStats:
    """Counters for one backend user (CLI run, service, benchmark)."""

    #: Residual programs lowered + compiled to Python.
    compiles: int = 0
    #: Wall-clock spent lowering/compiling (not executing).
    compile_seconds: float = 0.0
    #: Entry-point executions through compiled code.
    compiled_runs: int = 0
    #: Compiled artifacts rehydrated from a cache instead of recompiled.
    artifact_reuses: int = 0

    #: Shadow-mode comparisons (one compiled + one interpreted run).
    shadow_runs: int = 0
    #: Comparisons where either engine hit a resource limit
    #: (:class:`~repro.lang.errors.FuelExhausted`): no verdict.
    shadow_inconclusive: int = 0
    #: Divergences between the engines.  Must stay at zero.
    mismatches: int = 0

    def merge(self, other: "BackendStats") -> None:
        """Accumulate another instance's counters."""
        self.compiles += other.compiles
        self.compile_seconds += other.compile_seconds
        self.compiled_runs += other.compiled_runs
        self.artifact_reuses += other.artifact_reuses
        self.shadow_runs += other.shadow_runs
        self.shadow_inconclusive += other.shadow_inconclusive
        self.mismatches += other.mismatches

    def as_dict(self) -> dict:
        """JSON-ready snapshot (the ``stats.backend`` section of the
        ``--profile`` report)."""
        return {
            "compiles": self.compiles,
            "compile_seconds": round(self.compile_seconds, 6),
            "compiled_runs": self.compiled_runs,
            "artifact_reuses": self.artifact_reuses,
            "shadow_runs": self.shadow_runs,
            "shadow_inconclusive": self.shadow_inconclusive,
            "mismatches": self.mismatches,
        }
