"""Hit/miss counters for the facet-suite caching layer.

One :class:`CacheStats` instance lives on every
:class:`repro.facets.vector.FacetSuite`; the suite's dispatch cache,
vector interner and closed-operator memo all report into it.  The
perf-regression smoke test (``tests/perf/test_dispatch_cache.py``)
asserts the dispatch hit-rate stays above 50% on the workload corpus.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheStats:
    """Counters for one suite's caches."""

    #: Primitive-dispatch cache: (prim, arg sorts) -> resolved signature.
    dispatch_hits: int = 0
    dispatch_misses: int = 0
    #: Hash-consed vector construction.
    vector_hits: int = 0
    vector_misses: int = 0
    #: Memoized pure operator applications (closed facet ops + the PE
    #: facet's uniform operator).
    op_hits: int = 0
    op_misses: int = 0
    #: Whole-``apply_prim`` outcomes memoized on interned arguments.
    outcome_hits: int = 0
    outcome_misses: int = 0

    # -- derived -------------------------------------------------------
    @property
    def dispatch_rate(self) -> float:
        total = self.dispatch_hits + self.dispatch_misses
        return self.dispatch_hits / total if total else 0.0

    @property
    def vector_rate(self) -> float:
        total = self.vector_hits + self.vector_misses
        return self.vector_hits / total if total else 0.0

    @property
    def op_rate(self) -> float:
        total = self.op_hits + self.op_misses
        return self.op_hits / total if total else 0.0

    @property
    def outcome_rate(self) -> float:
        total = self.outcome_hits + self.outcome_misses
        return self.outcome_hits / total if total else 0.0

    @property
    def overall_rate(self) -> float:
        """Aggregate hit rate across every cache; 0.0 before any
        lookup (a fresh suite must report 0.0, not divide by zero)."""
        hits = (self.dispatch_hits + self.vector_hits + self.op_hits
                + self.outcome_hits)
        total = hits + (self.dispatch_misses + self.vector_misses
                        + self.op_misses + self.outcome_misses)
        return hits / total if total else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another suite's counters (benchmark aggregation)."""
        self.dispatch_hits += other.dispatch_hits
        self.dispatch_misses += other.dispatch_misses
        self.vector_hits += other.vector_hits
        self.vector_misses += other.vector_misses
        self.op_hits += other.op_hits
        self.op_misses += other.op_misses
        self.outcome_hits += other.outcome_hits
        self.outcome_misses += other.outcome_misses

    def as_dict(self) -> dict:
        return {
            "dispatch": {"hits": self.dispatch_hits,
                         "misses": self.dispatch_misses,
                         "rate": round(self.dispatch_rate, 4)},
            "vector": {"hits": self.vector_hits,
                       "misses": self.vector_misses,
                       "rate": round(self.vector_rate, 4)},
            "op": {"hits": self.op_hits,
                   "misses": self.op_misses,
                   "rate": round(self.op_rate, 4)},
            "outcome": {"hits": self.outcome_hits,
                        "misses": self.outcome_misses,
                        "rate": round(self.outcome_rate, 4)},
            "overall_rate": round(self.overall_rate, 4),
        }
