"""Counters for the batch specialization service.

One :class:`ServiceStats` instance lives on every
:class:`repro.service.scheduler.SpecializationService`.  The scheduler
and the cross-request residual cache
(:class:`repro.service.cache.ResidualCache`) both report into it, and
the fault-injection suite (``tests/service/test_faults.py``) pins the
retry/backoff/degradation accounting against injected worker crashes
and deadline expiries.

Counters are cumulative over the service's lifetime, not per batch;
:meth:`ServiceStats.merge` aggregates across services (the throughput
benchmark merges one instance per worker-count configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ServiceStats:
    """Counters for one specialization service."""

    #: Requests handed to the service (cache hits included).
    submitted: int = 0
    #: Requests answered with a real (non-degraded) residual, whether
    #: computed by a worker or served from the cross-request cache.
    completed: int = 0
    #: Requests answered with a fallback residual (``degraded=True``).
    degraded: int = 0
    #: Requests whose engine degraded *in-engine* (budget exhaustion →
    #: widening) and still returned a real residual: the cooperative
    #: alternative to a worker kill.  Counted under ``completed``, not
    #: ``degraded``.
    engine_degradations: int = 0

    #: Cross-request residual-cache traffic (the in-memory tier).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0

    #: Persistent artifact-store traffic (the disk tier below the LRU;
    #: :class:`repro.store.ArtifactStore`).  A store hit is always
    #: preceded by an in-memory ``cache_miss`` — the tiers are
    #: accounted separately.
    store_hits: int = 0
    store_misses: int = 0
    #: Payloads committed to disk (write-behind on completion).
    store_writes: int = 0
    #: Rows deleted to keep the store under its byte cap.
    store_evictions: int = 0
    #: Corruption events absorbed: rows failing their checksum (each
    #: quarantined and served as a miss) and database files SQLite
    #: refused (quarantined wholesale).  Never surfaced as exceptions.
    store_corrupt: int = 0
    #: Transient store failures swallowed (lock contention past the
    #: retry budget, I/O errors); the operation degraded to a miss or
    #: a dropped write.
    store_errors: int = 0

    #: ``genext``-engine tier traffic, reported back by workers (the
    #: tiers themselves live in worker processes).  A request served
    #: from a worker's in-memory module cache counts one
    #: ``genext_hits``; one loaded from the persistent store's
    #: ``genext`` row counts ``genext_store_hits``; a fresh emission
    #: counts ``genext_emits`` (plus ``genext_store_writes`` when the
    #: bundle was persisted).
    genext_hits: int = 0
    genext_store_hits: int = 0
    genext_store_writes: int = 0
    genext_emits: int = 0

    #: ``offline``-engine per-worker analysis-memo traffic: a hit
    #: means the request reused a cached facet analysis (same program,
    #: same abstract input pattern) instead of re-analyzing.
    analysis_memo_hits: int = 0
    analysis_memo_misses: int = 0

    #: Worker-process deaths observed (one per affected in-flight
    #: request: a single crash can break every future of its pool).
    worker_crashes: int = 0
    #: Resubmissions after a crash (bounded by ``max_attempts``).
    retries: int = 0
    #: Per-request deadlines that expired before the worker answered.
    timeouts: int = 0
    #: Deterministic in-worker failures (parse errors, fuel blowups);
    #: these degrade immediately — retrying cannot help.
    errors: int = 0
    #: The same failures keyed by taxonomy category
    #: (:func:`repro.engine.errors.classify`: ``program`` / ``budget`` /
    #: ``facet`` / ``specialization`` / ``internal``).
    errors_by_category: dict = field(default_factory=dict)
    #: Process pools torn down and rebuilt (after crashes/timeouts).
    pool_restarts: int = 0
    #: Exponential-backoff delay accumulated before resubmissions.
    backoff_seconds: float = 0.0

    #: Requests short-circuited by the poison-pill quarantine (their
    #: fingerprint repeatedly killed workers; degraded immediately
    #: with reason ``"quarantined"``, no pool traffic).
    quarantined: int = 0
    #: Fingerprints ever admitted to the poison-pill quarantine.
    poison_pills: int = 0
    #: Hung pool members terminated by the watchdog (stuck futures
    #: past their deadline/watchdog limit; the member is killed and
    #: the pool rebuilt instead of waiting for the hang to drain).
    watchdog_recycles: int = 0
    #: Circuit-breaker trips (closed/half-open → open), all seams.
    breaker_opens: int = 0
    #: Calls skipped because a breaker was open, all seams.
    breaker_short_circuits: int = 0
    #: Fault injections realized, keyed ``seam:kind`` (empty outside
    #: chaos runs; see :mod:`repro.faults`).
    faults_injected: dict = field(default_factory=dict)
    #: Health detail synced by the service (per-breaker state
    #: machines, the quarantine table) — snapshots, not counters, so
    #: :meth:`merge` keeps the receiver's.
    breaker_seams: dict = field(default_factory=dict)
    quarantine_detail: dict = field(default_factory=dict)
    #: Gateway front-door snapshot
    #: (:meth:`repro.observability.GatewayStats.as_dict`), synced by
    #: the gateway before every stats read; empty — and absent from
    #: :meth:`as_dict` — when no gateway fronts this service, so the
    #: batch/serve output shape is unchanged.
    gateway_detail: dict = field(default_factory=dict)

    # -- derived -------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        """Hit rate of the cross-request cache; 0.0 before any lookup
        (guarded like the :class:`CacheStats` rates)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def store_hit_rate(self) -> float:
        """Hit rate of the persistent store tier; 0.0 before any
        lookup."""
        total = self.store_hits + self.store_misses
        return self.store_hits / total if total else 0.0

    @property
    def degraded_rate(self) -> float:
        answered = self.completed + self.degraded
        return self.degraded / answered if answered else 0.0

    def merge(self, other: "ServiceStats") -> None:
        """Accumulate another service's counters."""
        self.submitted += other.submitted
        self.completed += other.completed
        self.degraded += other.degraded
        self.engine_degradations += other.engine_degradations
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        self.store_hits += other.store_hits
        self.store_misses += other.store_misses
        self.store_writes += other.store_writes
        self.store_evictions += other.store_evictions
        self.store_corrupt += other.store_corrupt
        self.store_errors += other.store_errors
        self.genext_hits += other.genext_hits
        self.genext_store_hits += other.genext_store_hits
        self.genext_store_writes += other.genext_store_writes
        self.genext_emits += other.genext_emits
        self.analysis_memo_hits += other.analysis_memo_hits
        self.analysis_memo_misses += other.analysis_memo_misses
        self.worker_crashes += other.worker_crashes
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.errors += other.errors
        for category, count in other.errors_by_category.items():
            self.errors_by_category[category] = \
                self.errors_by_category.get(category, 0) + count
        self.pool_restarts += other.pool_restarts
        self.backoff_seconds += other.backoff_seconds
        self.quarantined += other.quarantined
        self.poison_pills += other.poison_pills
        self.watchdog_recycles += other.watchdog_recycles
        self.breaker_opens += other.breaker_opens
        self.breaker_short_circuits += other.breaker_short_circuits
        for label, count in other.faults_injected.items():
            self.faults_injected[label] = \
                self.faults_injected.get(label, 0) + count

    def as_dict(self) -> dict:
        """JSON-ready snapshot (the ``service`` section of the
        ``--profile`` report)."""
        payload = self._as_dict_base()
        # Snapshot, not a counter — present only behind a gateway, so
        # batch/serve stats stay byte-identical to the pre-gateway
        # format.
        if self.gateway_detail:
            payload["gateway"] = dict(self.gateway_detail)
        return payload

    def _as_dict_base(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "degraded": self.degraded,
            "degraded_rate": round(self.degraded_rate, 4),
            "cache": {"hits": self.cache_hits,
                      "misses": self.cache_misses,
                      "evictions": self.cache_evictions,
                      "rate": round(self.cache_hit_rate, 4)},
            "store": {"hits": self.store_hits,
                      "misses": self.store_misses,
                      "writes": self.store_writes,
                      "evictions": self.store_evictions,
                      "corrupt": self.store_corrupt,
                      "errors": self.store_errors,
                      "rate": round(self.store_hit_rate, 4)},
            "genext": {"hits": self.genext_hits,
                       "store_hits": self.genext_store_hits,
                       "store_writes": self.genext_store_writes,
                       "emits": self.genext_emits},
            "analysis_memo": {"hits": self.analysis_memo_hits,
                              "misses": self.analysis_memo_misses},
            "worker_crashes": self.worker_crashes,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "errors_by_category": dict(self.errors_by_category),
            "pool_restarts": self.pool_restarts,
            "backoff_seconds": round(self.backoff_seconds, 6),
            "budget": {
                "engine_degradations": self.engine_degradations,
            },
            "faults": dict(self.faults_injected),
            "breaker": {"opens": self.breaker_opens,
                        "short_circuits": self.breaker_short_circuits,
                        "seams": dict(self.breaker_seams)},
            "quarantine": {"requests": self.quarantined,
                           "pills": self.poison_pills,
                           **dict(self.quarantine_detail)},
            "watchdog": {"recycles": self.watchdog_recycles},
        }
