"""Counters for the asyncio specialization gateway.

One :class:`GatewayStats` instance lives on every
:class:`repro.gateway.GatewayServer`.  The connection handler, the
router and the admission controller all report into it; the gateway
syncs a snapshot into :class:`~repro.observability.ServiceStats`
(the ``gateway`` section of ``GET /v1/stats`` and the ``--profile``
report) so one document describes the whole serving stack.

Counters are cumulative over the gateway's lifetime.  Everything here
mutates only on the event loop thread, so there are no locks.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class GatewayStats:
    """Counters for one gateway front door."""

    #: TCP connections accepted.
    connections: int = 0
    #: HTTP requests successfully parsed off those connections.
    requests: int = 0
    #: Requests the HTTP layer rejected (bad request line, oversized
    #: body, bad framing) — answered 4xx and the connection closed.
    malformed: int = 0
    #: Specialization jobs admitted past admission control.
    admitted: int = 0
    #: Jobs shed because the bounded queue was full (429).
    shed_queue: int = 0
    #: Jobs shed because the client was over its token-bucket quota
    #: (429).
    shed_quota: int = 0
    #: Jobs whose result was delivered (degraded results included;
    #: they are still answers).
    completed: int = 0
    #: Specialize calls served in streaming (chunked progress) mode.
    streamed: int = 0
    #: Progress events written to streaming clients.
    events_streamed: int = 0
    #: Responses that fell back to a 500 (handler bug or an injected
    #: ``gateway.*`` fault) — the "zero uncaught exceptions" odometer.
    internal_errors: int = 0
    #: Responses written, keyed by HTTP status code (as strings, so
    #: the dict is JSON-ready).
    responses_by_status: dict = field(default_factory=dict)
    #: Deepest the admission queue ever got (admitted minus released).
    queue_high_watermark: int = 0

    def observe_status(self, status: int) -> None:
        key = str(status)
        self.responses_by_status[key] = \
            self.responses_by_status.get(key, 0) + 1

    @property
    def shed(self) -> int:
        """Total jobs shed by admission control (queue + quota)."""
        return self.shed_queue + self.shed_quota

    @property
    def shed_rate(self) -> float:
        """Shed jobs over admission decisions; 0.0 before any."""
        decided = self.admitted + self.shed
        return self.shed / decided if decided else 0.0

    def merge(self, other: "GatewayStats") -> None:
        """Accumulate another gateway's counters (the benchmark
        aggregates one instance per load level)."""
        self.connections += other.connections
        self.requests += other.requests
        self.malformed += other.malformed
        self.admitted += other.admitted
        self.shed_queue += other.shed_queue
        self.shed_quota += other.shed_quota
        self.completed += other.completed
        self.streamed += other.streamed
        self.events_streamed += other.events_streamed
        self.internal_errors += other.internal_errors
        for status, count in other.responses_by_status.items():
            self.responses_by_status[status] = \
                self.responses_by_status.get(status, 0) + count
        self.queue_high_watermark = max(self.queue_high_watermark,
                                        other.queue_high_watermark)

    def as_dict(self) -> dict:
        """JSON-ready snapshot (the ``gateway`` section of
        ``/v1/stats`` and the ``--profile`` report)."""
        return {
            "connections": self.connections,
            "requests": self.requests,
            "malformed": self.malformed,
            "admitted": self.admitted,
            "shed_queue": self.shed_queue,
            "shed_quota": self.shed_quota,
            "shed_rate": round(self.shed_rate, 4),
            "completed": self.completed,
            "streamed": self.streamed,
            "events_streamed": self.events_streamed,
            "internal_errors": self.internal_errors,
            "responses_by_status": dict(self.responses_by_status),
            "queue_high_watermark": self.queue_high_watermark,
        }
