"""Observability: work counters, cache statistics and phase timers.

The paper's cost argument against online parameterized PE is that the
specializer pays ``facet_evaluations`` at every primitive (Figure 3);
this package makes that cost — and what the dispatch/interning caches
of :class:`repro.facets.vector.FacetSuite` save — measurable:

* :class:`PEStats` — per-run work counters (the decision-cost
  instrumentation behind ``benchmarks/bench_decisions.py``);
* :class:`CacheStats` — hit/miss counters of the facet-suite caches;
* :class:`ServiceStats` — batch-service counters (cross-request cache
  traffic, retries, timeouts, degradations) behind ``repro.service``;
* :class:`BackendStats` — compiled-backend counters (compiles, shadow
  comparisons, mismatches) behind ``repro.backend``;
* :class:`GatewayStats` — HTTP front-door counters (connections,
  admission/shed traffic, streaming) behind ``repro.gateway``;
* :class:`PhaseTimer` — wall-clock accounting per phase (parse /
  analyze / specialize / simplify);
* :func:`build_report` / :func:`write_report` — the JSON profile the
  CLI's ``--profile`` flag and the benchmark conftest emit.

Counters are *semantic*: ``facet_evaluations`` counts facet-operator
applications in the paper's cost model whether or not the memoization
layer served them from cache, so enabling caching never changes the
accounting (pinned by ``tests/observability/``).  Cache effectiveness
is reported separately through :class:`CacheStats`.
"""

from repro.observability.backend_stats import BackendStats
from repro.observability.cache_stats import CacheStats
from repro.observability.gateway_stats import GatewayStats
from repro.observability.service_stats import ServiceStats
from repro.observability.stats import PEStats
from repro.observability.timers import PhaseTimer
from repro.observability.profile import build_report, write_report

__all__ = [
    "BackendStats", "CacheStats", "GatewayStats", "PEStats",
    "PhaseTimer", "ServiceStats", "build_report", "write_report",
]
