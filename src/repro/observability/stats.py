"""Work counters for one specialization run.

``PEStats`` quantifies the paper's introduction: online systems pay
facet evaluations and reduce-or-residualize decisions at every program
point, offline systems move those decisions into the analysis.  The
counters deliberately measure the *cost model*, not the wall clock —
a facet-operator application counts as one evaluation even when the
suite's memoization layer served it from cache, so the accounting is
identical with caching on or off.  Wall-clock observations live in
``phase_seconds`` (filled by the specializers' phase timers) and in
:class:`repro.observability.cache_stats.CacheStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.budget import DegradeEvent

#: Degrade events kept verbatim per run; past the cap only the
#: per-reason counters grow (a pathological run can degrade at every
#: remaining call site).
MAX_RECORDED_DEGRADES = 64


@dataclass
class PEStats:
    """Work counters for one specialization run."""

    steps: int = 0
    #: How many facet operators ran (PE facet included) — the paper's
    #: online-cost complaint, quantified.
    facet_evaluations: int = 0
    prim_folds: int = 0
    #: Folds per producing facet name; ``"pe"`` is plain constant
    #: folding, anything else is a parameterized-PE win.
    folds_by_facet: dict = field(default_factory=dict)
    if_reductions: int = 0
    unfoldings: int = 0
    specializations: int = 0
    cache_hits: int = 0
    generalizations: int = 0
    #: PE-time *decisions*: reduce-or-residualize choices taken while
    #: specializing (what an offline strategy moves into the analysis).
    decisions: int = 0
    #: Variables refined by the constraint-propagation extension.
    constraint_refinements: int = 0
    #: Wall-clock seconds per phase ("specialize", "simplify", ...),
    #: excluded from the semantic accounting above.
    phase_seconds: dict = field(default_factory=dict)
    #: Graceful-degradation decisions taken under budget pressure
    #: (:class:`repro.engine.budget.DegradeEvent`); zero on any run
    #: whose budgets were not exhausted.
    degradations: int = 0
    degradations_by_reason: dict = field(default_factory=dict)
    degrade_events: list = field(default_factory=list)
    #: Budget usage snapshot ({"steps": ..., "wall_clock": ...,
    #: "residual_nodes": ...}), filled by the engine at run end.
    budget_used: dict = field(default_factory=dict)

    def record_fold(self, producer: str) -> None:
        self.prim_folds += 1
        self.folds_by_facet[producer] = \
            self.folds_by_facet.get(producer, 0) + 1

    def record_phase(self, name: str, seconds: float) -> None:
        self.phase_seconds[name] = \
            self.phase_seconds.get(name, 0.0) + seconds

    def record_degrade(self, event: DegradeEvent) -> None:
        self.degradations += 1
        self.degradations_by_reason[event.reason] = \
            self.degradations_by_reason.get(event.reason, 0) + 1
        if len(self.degrade_events) < MAX_RECORDED_DEGRADES:
            self.degrade_events.append(event)

    def as_dict(self) -> dict:
        """JSON-ready snapshot (used by the ``--profile`` report)."""
        return {
            "steps": self.steps,
            "facet_evaluations": self.facet_evaluations,
            "prim_folds": self.prim_folds,
            "folds_by_facet": dict(self.folds_by_facet),
            "if_reductions": self.if_reductions,
            "unfoldings": self.unfoldings,
            "specializations": self.specializations,
            "cache_hits": self.cache_hits,
            "generalizations": self.generalizations,
            "decisions": self.decisions,
            "constraint_refinements": self.constraint_refinements,
            "phase_seconds": dict(self.phase_seconds),
            "budget": {
                "degradations": self.degradations,
                "by_reason": dict(self.degradations_by_reason),
                "events": [event.as_dict()
                           for event in self.degrade_events],
                "used": dict(self.budget_used),
            },
        }
