"""The ``--profile`` JSON report.

Shared by the CLI (``ppe specialize --profile ...``) and the benchmark
conftest (``pytest benchmarks/ --profile report.json``): one JSON
document combining phase wall-clock times, specializer work counters
and the facet-suite cache statistics.
"""

from __future__ import annotations

import json
import sys
from typing import Any, TextIO

from repro.observability.backend_stats import BackendStats
from repro.observability.cache_stats import CacheStats
from repro.observability.service_stats import ServiceStats
from repro.observability.stats import PEStats
from repro.observability.timers import PhaseTimer

#: Report format version, bumped on layout changes.
REPORT_VERSION = 1


def build_report(*, command: str | None = None,
                 timer: PhaseTimer | None = None,
                 stats: PEStats | None = None,
                 cache_stats: CacheStats | None = None,
                 service_stats: ServiceStats | None = None,
                 backend_stats: BackendStats | None = None,
                 extra: dict[str, Any] | None = None) -> dict:
    """Assemble the JSON-ready profile document."""
    report: dict[str, Any] = {"version": REPORT_VERSION}
    if command is not None:
        report["command"] = command
    if timer is not None:
        report["phases"] = timer.as_dict()
        report["total_seconds"] = round(timer.total(), 6)
    if stats is not None:
        report["stats"] = stats.as_dict()
    if backend_stats is not None:
        report.setdefault("stats", {})["backend"] = backend_stats.as_dict()
    if cache_stats is not None:
        report["caches"] = cache_stats.as_dict()
    if service_stats is not None:
        report["service"] = service_stats.as_dict()
    if extra:
        report.update(extra)
    return report


def write_report(report: dict, destination: str | None,
                 fallback: TextIO | None = None) -> None:
    """Write the report to ``destination`` (a path), or to ``fallback``
    (default stderr) when the destination is ``None`` or ``"-"``."""
    text = json.dumps(report, indent=2, sort_keys=True)
    if destination and destination != "-":
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        return
    stream = fallback if fallback is not None else sys.stderr
    print(text, file=stream)
