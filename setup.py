"""Legacy setup shim so `pip install -e .` works without network access
(the sandbox has no `wheel` package, which PEP 517 editable builds need)."""

from setuptools import setup

setup()
