"""Experiment: residual programs beat their sources (the point of PE).

For each workload we run the source and its specialized residual
through the *same* interpreter and compare step counts (work) and
wall-clock.  Paper shape: residuals win everywhere; the inner product
and the mini-VM win big (all control overhead specialized away).
"""

import pytest

from repro.facets import FacetSuite, VectorSizeFacet
from repro.lang.interp import Interpreter, run_with_stats
from repro.lang.values import VECTOR, Vector
from repro.online import specialize_online
from repro.workloads import WORKLOADS, vm_program_square_plus

SIZE = 16


def _vector(n, scale=1.0):
    return Vector.of([scale * (i + 1) for i in range(n)])


def _residual_speedup(program, inputs, suite, run_args, source_args,
                      values_close):
    result = specialize_online(program, inputs, suite)
    want, source_stats = run_with_stats(program, *source_args)
    got, residual_stats = run_with_stats(result.program, *run_args)
    # Float results go through the shared approx-equal helper: the
    # residual may reassociate constant arithmetic.
    values_close(want, got)
    return source_stats.steps, residual_stats.steps, result


def test_inner_product_speedup(benchmark, report, size_suite,
                               values_close, bench_record):
    program = WORKLOADS["inner_product"].program()
    inputs = [size_suite.input(VECTOR, size=SIZE)] * 2
    a, b = _vector(SIZE), _vector(SIZE, 0.5)
    result = specialize_online(program, inputs, size_suite)

    interp = Interpreter(result.program)
    benchmark(lambda: Interpreter(result.program).run(a, b))

    source_steps, residual_steps, _ = _residual_speedup(
        program, inputs, size_suite, (a, b), (a, b), values_close)
    assert residual_steps < source_steps
    report(f"inner_product size {SIZE}: {source_steps} -> "
           f"{residual_steps} interpreter steps "
           f"({source_steps / residual_steps:.1f}x)")
    bench_record("inner_product", size=SIZE, source_steps=source_steps,
                 residual_steps=residual_steps,
                 step_speedup=round(source_steps / residual_steps, 2))


def test_mini_vm_speedup(benchmark, report, values_close,
                         bench_record):
    program = WORKLOADS["mini_vm"].program()
    suite = FacetSuite()
    code = Vector.of(vm_program_square_plus(7.0))
    result = specialize_online(
        program, [code, suite.unknown("float")], suite)

    benchmark(lambda: Interpreter(result.program).run(3.5))

    want, source_stats = run_with_stats(program, code, 3.5)
    got, residual_stats = run_with_stats(result.program, 3.5)
    values_close(want, got)
    assert residual_stats.steps * 5 < source_stats.steps, \
        "compiling the VM away should win by a lot"
    report(f"mini_vm: {source_stats.steps} -> {residual_stats.steps} "
           f"steps ({source_stats.steps / residual_stats.steps:.1f}x)")
    bench_record("mini_vm", source_steps=source_stats.steps,
                 residual_steps=residual_stats.steps)


def test_alternating_sum_speedup(benchmark, report, rich_suite,
                                 values_close):
    program = WORKLOADS["alternating_sum"].program()
    inputs = [rich_suite.input(VECTOR, size=SIZE)]
    v = _vector(SIZE)
    result = specialize_online(program, inputs, rich_suite)

    benchmark(lambda: Interpreter(result.program).run(v))

    want, source_stats = run_with_stats(program, v)
    got, residual_stats = run_with_stats(result.program, v)
    values_close(want, got)
    assert residual_stats.steps < source_stats.steps
    report(f"alternating_sum size {SIZE}: {source_stats.steps} -> "
           f"{residual_stats.steps} steps "
           f"({source_stats.steps / residual_stats.steps:.1f}x)")


def test_speedup_series(benchmark, report, size_suite):
    """The series the paper's shape implies: speedup grows with the
    static size (more control overhead removed per element)."""
    program = WORKLOADS["inner_product"].program()

    def series():
        rows = []
        for size in (2, 8, 32):
            inputs = [size_suite.input(VECTOR, size=size)] * 2
            result = specialize_online(program, inputs, size_suite)
            a, b = _vector(size), _vector(size, 2.0)
            _, source_stats = run_with_stats(program, a, b)
            _, residual_stats = run_with_stats(result.program, a, b)
            rows.append((size, source_stats.steps,
                         residual_stats.steps))
        return rows

    rows = benchmark(series)
    lines = ["size | source steps | residual steps | speedup"]
    for size, source_steps, residual_steps in rows:
        speedup = source_steps / residual_steps
        lines.append(f"{size:4d} | {source_steps:12d} | "
                     f"{residual_steps:14d} | {speedup:6.2f}x")
        # Shape: a solid constant-factor win at every size (the loop
        # control is gone; the vrefs/multiplies remain).
        assert speedup > 1.5
    report(*lines)
