"""Shared benchmark fixtures.

Each benchmark file regenerates one figure/claim of the paper (see
DESIGN.md's per-experiment index).  Besides timing via
``pytest-benchmark``, every experiment prints the rows the paper-shape
comparison needs; the ``report`` fixture writes them to the live
terminal (bypassing capture) so ``pytest benchmarks/ --benchmark-only``
shows them inline.

Machine-readable artifacts: when ``REPRO_BENCH_JSON_DIR`` is set,
every benchmark module's recorded rows are written to
``BENCH_<name>.json`` files in that directory at session end (one
shared writer; the ``bench_record`` fixture is the per-test recording
end, and every ``report`` line is captured as well).  This is how the
CI perf trajectory is fed — see EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.lang.values import format_value, values_approx_equal
from repro.observability import (
    CacheStats, ServiceStats, build_report, write_report)

#: Suites handed out by the fixtures below, harvested at session end
#: when ``--profile`` is given.
_SUITES: list[FacetSuite] = []

#: ServiceStats snapshots recorded by the service benchmarks via the
#: ``track_service_stats`` fixture; merged into the profile report.
_SERVICE_STATS: list[ServiceStats] = []

#: Env var naming the directory ``BENCH_<name>.json`` artifacts go to;
#: unset means no artifacts (the usual local run).
BENCH_JSON_ENV = "REPRO_BENCH_JSON_DIR"

#: Rows recorded this session, keyed by benchmark name (the module
#: name minus its ``bench_`` prefix) then by row key.
_BENCH_RECORDS: dict[str, dict[str, object]] = {}


def record_bench(bench: str, key: str, payload: object) -> None:
    """The one shared writer behind ``BENCH_<name>.json``: stage a
    row; :func:`pytest_sessionfinish` writes the staged rows out when
    ``REPRO_BENCH_JSON_DIR`` is set."""
    _BENCH_RECORDS.setdefault(bench, {})[key] = payload


def _bench_name(request) -> str:
    name = request.node.module.__name__.rpartition(".")[2]
    return name[len("bench_"):] if name.startswith("bench_") else name


def _write_bench_artifacts() -> None:
    destination = os.environ.get(BENCH_JSON_ENV)
    if not destination or not _BENCH_RECORDS:
        return
    directory = Path(destination)
    directory.mkdir(parents=True, exist_ok=True)
    for bench, rows in sorted(_BENCH_RECORDS.items()):
        path = directory / f"BENCH_{bench}.json"
        path.write_text(
            json.dumps(rows, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")


def assert_values_close(want, got, context: str = "") -> None:
    """The shared approx-equal assertion for benchmark result checks:
    exact on ints/bools, tolerance-based on floats and vectors (see
    :func:`repro.lang.values.values_approx_equal`)."""
    where = f" [{context}]" if context else ""
    assert values_approx_equal(want, got), \
        f"values diverge{where}: want {format_value(want)}, " \
        f"got {format_value(got)}"


def pytest_addoption(parser):
    parser.addoption(
        "--profile", nargs="?", const="-", default=None, metavar="PATH",
        help="after the benchmark run, write a JSON report aggregating "
             "the facet-suite cache statistics to PATH (stderr when "
             "PATH is omitted or '-')")


def pytest_sessionfinish(session, exitstatus):
    _write_bench_artifacts()
    destination = session.config.getoption("--profile", default=None)
    if destination is None or not (_SUITES or _SERVICE_STATS):
        return
    merged = CacheStats()
    for suite in _SUITES:
        merged.merge(suite.cache_stats)
    service = None
    if _SERVICE_STATS:
        service = ServiceStats()
        for stats in _SERVICE_STATS:
            service.merge(stats)
    report = build_report(
        command="pytest benchmarks/", cache_stats=merged,
        service_stats=service,
        extra={"suites": len(_SUITES),
               "service_runs": len(_SERVICE_STATS)})
    write_report(report, destination)


def _track(suite: FacetSuite) -> FacetSuite:
    _SUITES.append(suite)
    return suite


@pytest.fixture
def report(capsys, request):
    """Print experiment rows to the real terminal (and stage them for
    the ``BENCH_<name>.json`` artifact, so every benchmark emits at
    least its human-readable rows machine-readably)."""
    bench = _bench_name(request)

    def emit(*lines: str) -> None:
        staged = _BENCH_RECORDS.setdefault(bench, {})
        staged.setdefault("report_lines", []).extend(lines)
        with capsys.disabled():
            print()
            for line in lines:
                print(line)

    return emit


@pytest.fixture
def bench_record(request):
    """Stage structured rows for this module's ``BENCH_<name>.json``:
    ``bench_record("row_key", metric=value, ...)``."""
    bench = _bench_name(request)

    def rec(key: str, **payload: object) -> None:
        record_bench(bench, key, payload)

    return rec


@pytest.fixture
def values_close():
    """Fixture handle on :func:`assert_values_close` (benchmarks are
    not a package, so fixtures are how they reach shared helpers)."""
    return assert_values_close


@pytest.fixture
def track_service_stats():
    """Record a :class:`ServiceStats` snapshot for the --profile
    report (service benchmarks call it once per measured run)."""
    return _SERVICE_STATS.append


@pytest.fixture
def size_suite():
    return _track(FacetSuite([VectorSizeFacet()]))


@pytest.fixture
def rich_suite():
    return _track(FacetSuite([SignFacet(), ParityFacet(), IntervalFacet(),
                              VectorSizeFacet()]))


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """Benchmarks that install a fault plan (the chaos soak bench)
    must not leak the process-global injector into later benchmarks."""
    yield
    from repro.faults import uninstall
    uninstall()
