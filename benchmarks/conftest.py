"""Shared benchmark fixtures.

Each benchmark file regenerates one figure/claim of the paper (see
DESIGN.md's per-experiment index).  Besides timing via
``pytest-benchmark``, every experiment prints the rows the paper-shape
comparison needs; the ``report`` fixture writes them to the live
terminal (bypassing capture) so ``pytest benchmarks/ --benchmark-only``
shows them inline.
"""

from __future__ import annotations

import pytest

from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)


@pytest.fixture
def report(capsys):
    """Print experiment rows to the real terminal."""

    def emit(*lines: str) -> None:
        with capsys.disabled():
            print()
            for line in lines:
                print(line)

    return emit


@pytest.fixture
def size_suite():
    return FacetSuite([VectorSizeFacet()])


@pytest.fixture
def rich_suite():
    return FacetSuite([SignFacet(), ParityFacet(), IntervalFacet(),
                       VectorSizeFacet()])
