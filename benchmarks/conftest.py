"""Shared benchmark fixtures.

Each benchmark file regenerates one figure/claim of the paper (see
DESIGN.md's per-experiment index).  Besides timing via
``pytest-benchmark``, every experiment prints the rows the paper-shape
comparison needs; the ``report`` fixture writes them to the live
terminal (bypassing capture) so ``pytest benchmarks/ --benchmark-only``
shows them inline.
"""

from __future__ import annotations

import pytest

from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.observability import (
    CacheStats, ServiceStats, build_report, write_report)

#: Suites handed out by the fixtures below, harvested at session end
#: when ``--profile`` is given.
_SUITES: list[FacetSuite] = []

#: ServiceStats snapshots recorded by the service benchmarks via the
#: ``track_service_stats`` fixture; merged into the profile report.
_SERVICE_STATS: list[ServiceStats] = []


def pytest_addoption(parser):
    parser.addoption(
        "--profile", nargs="?", const="-", default=None, metavar="PATH",
        help="after the benchmark run, write a JSON report aggregating "
             "the facet-suite cache statistics to PATH (stderr when "
             "PATH is omitted or '-')")


def pytest_sessionfinish(session, exitstatus):
    destination = session.config.getoption("--profile", default=None)
    if destination is None or not (_SUITES or _SERVICE_STATS):
        return
    merged = CacheStats()
    for suite in _SUITES:
        merged.merge(suite.cache_stats)
    service = None
    if _SERVICE_STATS:
        service = ServiceStats()
        for stats in _SERVICE_STATS:
            service.merge(stats)
    report = build_report(
        command="pytest benchmarks/", cache_stats=merged,
        service_stats=service,
        extra={"suites": len(_SUITES),
               "service_runs": len(_SERVICE_STATS)})
    write_report(report, destination)


def _track(suite: FacetSuite) -> FacetSuite:
    _SUITES.append(suite)
    return suite


@pytest.fixture
def report(capsys):
    """Print experiment rows to the real terminal."""

    def emit(*lines: str) -> None:
        with capsys.disabled():
            print()
            for line in lines:
                print(line)

    return emit


@pytest.fixture
def track_service_stats():
    """Record a :class:`ServiceStats` snapshot for the --profile
    report (service benchmarks call it once per measured run)."""
    return _SERVICE_STATS.append


@pytest.fixture
def size_suite():
    return _track(FacetSuite([VectorSizeFacet()]))


@pytest.fixture
def rich_suite():
    return _track(FacetSuite([SignFacet(), ParityFacet(), IntervalFacet(),
                              VectorSizeFacet()]))
