"""Experiment: resource-governance overhead.

The budget meter sits on the ``_pe`` hot path (one bitmask test per
valuation step, a ``charge_steps`` sync every
``repro.engine.budget.STEP_STRIDE`` steps, one ``charge_nodes`` per
residual node), so it must be near-free when nothing is close to
exhaustion.  This benchmark times
the online specializer on the Figure 8 inner product and on the
higher-order pipeline twice — once with the default (finite but huge)
budgets and once with every budget dimension disabled — and asserts
the governed median stays within 5% of the ungoverned one.

``--profile`` writes the measured pairs to the usual JSON report
(the CI ``adversarial`` job archives it).
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.lang.values import VECTOR
from repro.online.config import PEConfig
from repro.online.specializer import specialize_online
from repro.workloads import WORKLOADS

#: Budgets off: every dimension ``None`` makes ``Budget.limited``
#: false, so the meter short-circuits to one attribute read per step.
UNGOVERNED = PEConfig(max_steps=None, max_residual_nodes=None)
GOVERNED = PEConfig()  # the defaults: 1M steps / 250k nodes

ROUNDS = 25

#: The acceptance bound, plus an absolute floor so timer noise on a
#: sub-millisecond workload cannot fail the relative check.
MAX_OVERHEAD = 0.05
NOISE_FLOOR_SECONDS = 0.002


def _paired_medians(governed, ungoverned) -> tuple[float, float]:
    """Interleave the two variants so load drift hits both equally."""
    governed_samples, ungoverned_samples = [], []
    for _ in range(ROUNDS):
        for run, samples in ((governed, governed_samples),
                             (ungoverned, ungoverned_samples)):
            started = time.perf_counter()
            run()
            samples.append(time.perf_counter() - started)
    return (statistics.median(governed_samples),
            statistics.median(ungoverned_samples))


def _assert_overhead(report, bench_record, name, governed,
                     ungoverned):
    overhead = (governed - ungoverned) / ungoverned
    report(f"{name}: governed {governed * 1e3:.2f}ms, "
           f"ungoverned {ungoverned * 1e3:.2f}ms, "
           f"overhead {overhead:+.1%}")
    assert governed - ungoverned <= max(
        MAX_OVERHEAD * ungoverned, NOISE_FLOOR_SECONDS), \
        f"{name}: governance overhead {overhead:.1%} exceeds 5%"
    _record(bench_record, name, governed, ungoverned, overhead)


_RESULTS: dict[str, dict] = {}


def _record(bench_record, name, governed, ungoverned, overhead):
    _RESULTS[name] = {"governed_seconds": round(governed, 6),
                      "ungoverned_seconds": round(ungoverned, 6),
                      "overhead": round(overhead, 4)}
    # Shared machine-readable artifact (BENCH_budget_overhead.json,
    # gated on REPRO_BENCH_JSON_DIR like every other benchmark)...
    bench_record(name, **_RESULTS[name])
    # ...plus the legacy single-file env var CI already wires up.
    destination = os.environ.get("REPRO_BUDGET_OVERHEAD_JSON")
    if destination:
        with open(destination, "w", encoding="utf-8") as handle:
            json.dump(_RESULTS, handle, indent=2, sort_keys=True)


def test_overhead_inner_product(benchmark, report, size_suite,
                                bench_record):
    program = WORKLOADS["inner_product"].program()
    inputs = [size_suite.input(VECTOR, size=64)] * 2

    def governed():
        return specialize_online(program, inputs, size_suite, GOVERNED)

    def ungoverned():
        return specialize_online(program, inputs, size_suite,
                                 UNGOVERNED)

    # Warm the dispatch/interning caches before measuring either side.
    assert governed().program == ungoverned().program
    governed_s, ungoverned_s = _paired_medians(governed, ungoverned)
    benchmark(governed)
    _assert_overhead(report, bench_record, "inner_product(size=64)",
                     governed_s, ungoverned_s)


def test_overhead_higher_order(benchmark, report, rich_suite,
                               bench_record):
    program = WORKLOADS["ho_pipeline"].program()
    inputs = [rich_suite.input(VECTOR, size=8),
              rich_suite.const_vector(2.0)]

    def governed():
        return specialize_online(program, inputs, rich_suite, GOVERNED)

    def ungoverned():
        return specialize_online(program, inputs, rich_suite,
                                 UNGOVERNED)

    assert governed().program == ungoverned().program
    governed_s, ungoverned_s = _paired_medians(governed, ungoverned)
    benchmark(governed)
    _assert_overhead(report, bench_record, "ho_pipeline(size=8)",
                     governed_s, ungoverned_s)
