"""Experiment: decision-cost accounting across all three evaluators.

The paper's introduction ranks the strategies by PE-time work: Redfun-
style online systems are "computationally expensive" (limitation iii);
offline systems move the decisions into the analysis.  This bench runs
Figure 2's simple PE, online PPE and offline PPE over a workload matrix
and prints the counter table; asserted shape per workload:

    offline facet evals  <  online facet evals
    offline decisions    <  online decisions
    simple PE folds      <= online PPE folds (facets only add folds)
"""

import pytest

from repro.baselines.simple_pe import DYN, specialize_simple
from repro.facets import FacetSuite, SignFacet, VectorSizeFacet
from repro.lang.values import INT, VECTOR
from repro.offline.specializer import specialize_offline
from repro.online import PEConfig, UnfoldStrategy, specialize_online
from repro.workloads import WORKLOADS

CONFIG = PEConfig(unfold_strategy=UnfoldStrategy.STATIC_ARGS)
NEVER = PEConfig(unfold_strategy=UnfoldStrategy.NEVER)


def _matrix():
    suite_size = FacetSuite([VectorSizeFacet()])
    suite_sign = FacetSuite([SignFacet()])
    return [
        ("inner_product",
         WORKLOADS["inner_product"].program(), suite_size,
         [suite_size.input(VECTOR, size=8)] * 2, [DYN, DYN], CONFIG),
        ("poly_eval",
         WORKLOADS["poly_eval"].program(), suite_size,
         [suite_size.input(VECTOR, size=6),
          suite_size.unknown("float")], [DYN, DYN], CONFIG),
        ("sign_pipeline",
         WORKLOADS["sign_pipeline"].program(), suite_sign,
         [suite_sign.input(INT, sign="pos"),
          suite_sign.input(INT, sign="pos")], [DYN, DYN], NEVER),
    ]


def test_decision_table(benchmark, report):
    def run():
        rows = []
        for name, program, suite, inputs, simple_inputs, config \
                in _matrix():
            simple = specialize_simple(program, simple_inputs, config)
            online = specialize_online(program, inputs, suite, config)
            offline = specialize_offline(program, inputs, suite,
                                         config=config)
            rows.append((name, simple.stats, online.stats,
                         offline.stats))
        return rows

    rows = benchmark(run)

    lines = ["workload        | evaluator | facet evals | decisions "
             "| folds",
             "-" * 66]
    for name, simple, online, offline in rows:
        for label, stats in (("simple", simple), ("online", online),
                             ("offline", offline)):
            lines.append(
                f"{name:15} | {label:9} | {stats.facet_evaluations:11d}"
                f" | {stats.decisions:9d} | {stats.prim_folds:5d}")
        assert offline.facet_evaluations < online.facet_evaluations, \
            name
        assert offline.decisions < online.decisions, name
        assert simple.prim_folds <= online.prim_folds, name
    report(*lines)
