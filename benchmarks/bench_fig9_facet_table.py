"""Experiment: Figure 9 — the facet analysis of the inner product.

Regenerates the paper's Figure 9 table (abstract facet values of the
main expressions, given dynamic vectors of static size) and times the
analysis.  Paper shape: ``n`` is Static inside ``dotProd``; size-facet
computation is needed in ``iprod`` only.
"""

import pytest

from repro.facets.abstract import AbstractSuite
from repro.facets.abstract.size import STATIC_SIZE
from repro.lang.values import VECTOR
from repro.lattice.bt import BT
from repro.offline.analysis import analyze
from repro.offline.report import facet_table
from repro.workloads import WORKLOADS


@pytest.fixture
def program():
    return WORKLOADS["inner_product"].program()


def test_fig9_table(benchmark, report, program, size_suite):
    suite = AbstractSuite(size_suite)
    inputs = [suite.input(VECTOR, bt=BT.DYNAMIC, size=STATIC_SIZE)] * 2

    analysis = benchmark(analyze, program, inputs, suite)

    # The figure's key facts.
    assert analysis.signatures["dotprod"].args[2].bt is BT.STATIC
    assert analysis.needed_facets["iprod"] == {"size"}
    assert analysis.needed_facets["dotprod"] == frozenset()
    report(facet_table(analysis,
                       title="Figure 9 — facet analysis of iprod"))


def test_fig9_with_all_facets(benchmark, report, program, rich_suite):
    """Same analysis with the full facet suite attached: the extra
    facets must not disturb the Figure 9 facts, only add columns."""
    suite = AbstractSuite(rich_suite)
    inputs = [suite.input(VECTOR, bt=BT.DYNAMIC, size=STATIC_SIZE)] * 2

    analysis = benchmark(analyze, program, inputs, suite)

    assert analysis.signatures["dotprod"].args[2].bt is BT.STATIC
    assert "size" in analysis.needed_facets["iprod"]
    report(f"with 4 facets: needed(iprod)="
           f"{sorted(analysis.needed_facets['iprod'])}, "
           f"needed(dotprod)="
           f"{sorted(analysis.needed_facets['dotprod'])}, "
           f"h iterations={analysis.stats.iterations}")
