"""Experiment: Figures 5-6 — higher-order facet analysis cost.

Times the higher-order analysis on the corpus's higher-order programs
and on a generated tower of ``compose`` applications.  Shape: cost
grows with the closure-flow depth but stays bounded by the Hudak-Young
depth restriction; binding times match the first-order analysis on the
first-order fragment.
"""

import pytest

from repro.facets import FacetSuite, SignFacet, VectorSizeFacet
from repro.facets.abstract import AbstractSuite
from repro.facets.abstract.size import STATIC_SIZE
from repro.lang.parser import parse_program
from repro.lattice.bt import BT
from repro.offline.higher_order import analyze_higher_order
from repro.workloads import WORKLOADS


@pytest.fixture
def suite():
    return AbstractSuite(FacetSuite([SignFacet(), VectorSizeFacet()]))


def test_ho_pipeline(benchmark, report, suite):
    program = WORKLOADS["ho_pipeline"].program()
    inputs = [suite.input("vector", bt=BT.DYNAMIC, size=STATIC_SIZE),
              suite.static("float")]

    result = benchmark(analyze_higher_order, program, inputs, suite)

    assert result.bt_of_result() is BT.DYNAMIC
    fold_args, _ = result.signatures["fold"]
    assert fold_args[3].bt is BT.STATIC
    report(f"ho_pipeline: {len(result.signatures)} signatures, "
           f"{result.stats.evaluations} closure-cell evaluations")


def test_ho_select_dynamic_flag(benchmark, report, suite):
    program = WORKLOADS["ho_select"].program()
    inputs = [suite.dynamic("int"),
              suite.input("bool", bt=BT.DYNAMIC)]

    result = benchmark(analyze_higher_order, program, inputs, suite)

    assert result.bt_of_result() is BT.DYNAMIC
    report("ho_select (dynamic flag): result "
           f"{result.result} — T_C path exercised")


def _compose_tower(depth: int) -> str:
    lines = ["(define (main x)"]
    expr = "(lambda (v) (+ v 1))"
    for _ in range(depth):
        expr = f"(compose {expr} (lambda (v) (* v 2)))"
    lines.append(f"  ({expr} x))")
    lines.append("(define (compose f g) (lambda (a) (f (g a))))")
    return "\n".join(lines)


@pytest.mark.parametrize("depth", [2, 6, 12])
def test_compose_tower_scaling(benchmark, report, suite, depth):
    from repro.offline.higher_order import HOConfig
    program = parse_program(_compose_tower(depth))
    inputs = [suite.static("int")]
    # Memo-cell churn grows superlinearly with the closure-flow depth
    # (each fixpoint growth of a captured value mints a fresh abstract
    # closure); give the analysis a budget proportional to the tower.
    config = HOConfig(max_apply_depth=16 * depth,
                      max_cells_per_closure=64 * depth)

    result = benchmark(analyze_higher_order, program, inputs, suite,
                       config)

    assert result.bt_of_result() is BT.STATIC
    report(f"compose tower depth {depth:2d}: "
           f"{result.stats.evaluations} closure-cell evaluations")
