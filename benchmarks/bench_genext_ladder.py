"""The amortization ladder: fused < cogen < offline < online.

Two claims back the ``genext`` engine (EXPERIMENTS.md "fused
generating extensions"):

1. **Per-specialization cost is strictly ordered** across the four
   tiers on a multi-workload corpus.  Each tier prices what a service
   actually pays per request once the per-*program* work has been
   amortized:

   * ``online``  — parse the program, build a suite, specialize from
     scratch (no amortizable artifact exists);
   * ``offline`` — the binding-time analysis is warm, every request
     still walks the annotated AST through the interpretive
     specializer;
   * ``cogen``   — the generating extension is warm as in-memory
     closures (:class:`repro.offline.cogen.GeneratingExtension`);
   * ``fused``   — the generating extension was *emitted* as a Python
     module (:mod:`repro.genext`) and is warm as loaded code: pure
     decision procedures, no AST dispatch on the hot path.

   The three amortized tiers share one generalized analysis, so their
   residuals must be **byte-identical** — asserted per spec vector —
   and the fused residuals are shadow-verified (compiled vs interpreter)
   on sample dynamic arguments.

2. **Service amortization**: on a skewed multi-spec stream against one
   source, engine ``genext`` (one emitted module serves the whole
   generalized-pattern class) sustains at least twice the warm
   throughput of engine ``offline`` (which re-analyzes every distinct
   exact pattern), with the reuse visible as ``genext_hits`` in
   :class:`~repro.observability.ServiceStats`.

Timing is manual ``perf_counter`` (best-of-rounds per spec vector)
rather than ``pytest-benchmark`` because the ordering assertions need
all four tiers measured inside one test.  ``REPRO_BENCH_JSON_DIR`` routes the
rows to ``BENCH_genext_ladder.json``.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Sequence

from repro.backend.verify import execute_program
from repro.facets.abstract.vector import AbstractSuite
from repro.genext import emit_genext, load_genext
from repro.genext.emit import default_suite, generalized_pattern
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.values import Vector
from repro.observability import BackendStats
from repro.offline.analysis import analyze
from repro.offline.cogen import GeneratingExtension
from repro.offline.specializer import OfflineSpecializer
from repro.online.specializer import specialize_online
from repro.service.results import SpecRequest
from repro.service.scheduler import SpecializationService
from repro.service.specs import parse_specs
from repro.service.worker import default_suite as service_suite
from repro.workloads import WORKLOADS

#: Measured rounds over each workload's spec variants (after 2 warmup
#: rounds).  The per-tier statistic is the mean over variants of each
#: variant's *minimum* across rounds — the best observed cost of a
#: deterministic computation, robust against scheduler noise where a
#: median over mixed-size variants is not.
ROUNDS = 7

TIERS = ("online", "offline", "cogen", "fused")


@dataclass(frozen=True)
class Case:
    """One corpus workload: spec variants within a single generalized
    pattern class, plus sample dynamic args for shadow verification."""

    workload: str
    variants: tuple[tuple[str, ...], ...]
    #: Maps a spec vector to sample arguments for the residual goal
    #: (the dynamic parameters, in goal order).
    sample_args: Callable[[tuple[str, ...]], tuple]


def _size_of(spec: str) -> int:
    return int(spec.split("=", 1)[1])


CASES = (
    # Recursive exponentiation-by-squaring; the exponent literal is
    # static, the base dynamic.
    Case("power",
         tuple(("dyn", str(n)) for n in (5, 7, 9, 11)),
         lambda specs: (3,)),
    # Size-specialized loops: the vectors stay dynamic, only the size
    # facet is pinned, so the residual goal keeps all its parameters.
    Case("inner_product",
         tuple((f"size={n}",) * 2 for n in (8, 16, 24)),
         lambda specs: (Vector.of(range(1, _size_of(specs[0]) + 1)),
                        Vector.of(range(2, _size_of(specs[0]) + 2)))),
    Case("poly_eval",
         tuple((f"size={n}", "dyn") for n in (3, 5, 7)),
         lambda specs: (Vector.of(range(1, _size_of(specs[0]) + 1)),
                        2.0)),
    Case("binary_search",
         tuple((f"size={n}", "dyn") for n in (7, 15, 31)),
         lambda specs: (Vector.of(range(1, _size_of(specs[0]) + 1)),
                        float(min(7, _size_of(specs[0]))))),
    # Fully static: the residual goal is a constant, no dynamic args.
    Case("gcd",
         (("48", "18"), ("270", "192"), ("1071", "462")),
         lambda specs: ()),
)


def _best_ms(fn: Callable[[tuple[str, ...]], object],
             variants: Sequence[tuple[str, ...]]) -> float:
    """Mean over variants of the per-variant minimum across rounds,
    in milliseconds (see the ``ROUNDS`` comment)."""
    for _ in range(2):
        for specs in variants:
            fn(specs)
    best = [float("inf")] * len(variants)
    for _ in range(ROUNDS):
        for index, specs in enumerate(variants):
            start = perf_counter()
            fn(specs)
            best[index] = min(best[index],
                              (perf_counter() - start) * 1e3)
    return statistics.fmean(best)


def _build_tiers(source: str, first: tuple[str, ...]):
    """Warm per-program state: one generalized analysis shared by the
    offline/cogen tiers and one emitted module for the fused tier, so
    all three produce byte-identical residuals."""
    program = parse_program(source)
    suite = default_suite()
    abstract = AbstractSuite(suite)
    pattern, _, _ = generalized_pattern(suite, abstract, list(first))
    analysis = analyze(program, list(pattern), abstract)
    extension = GeneratingExtension(analysis, suite)
    module = load_genext(emit_genext(source, list(first)).python_source)

    def online(specs):
        fresh_program = parse_program(source)
        fresh_suite = service_suite()
        inputs = parse_specs(fresh_suite, list(specs))
        return specialize_online(fresh_program, inputs, fresh_suite)

    def offline(specs):
        inputs = parse_specs(suite, list(specs))
        return OfflineSpecializer(analysis, suite).specialize(inputs)

    def cogen(specs):
        return extension.specialize(parse_specs(suite, list(specs)))

    def fused(specs):
        return module.specialize_specs(list(specs))

    return {"online": online, "offline": offline,
            "cogen": cogen, "fused": fused}


def test_genext_ladder(report, bench_record):
    """Corpus-aggregate per-specialization cost is strictly ordered
    fused < cogen < offline < online, with byte-identical residuals
    across the amortized tiers and shadow-verified fused output."""
    aggregate = dict.fromkeys(TIERS, 0.0)
    report(f"{'workload':14} " +
           " ".join(f"{tier:>9}" for tier in TIERS) + "  (ms/spec)")
    for case in CASES:
        source = WORKLOADS[case.workload].source
        tiers = _build_tiers(source, case.variants[0])

        shadow = BackendStats()
        for specs in case.variants:
            baseline = pretty_program(tiers["offline"](specs).program)
            for tier in ("cogen", "fused"):
                text = pretty_program(tiers[tier](specs).program)
                assert text == baseline, \
                    f"{case.workload} {specs}: {tier} residual diverges"
            residual = tiers["fused"](specs).program
            execute_program(residual, case.sample_args(specs),
                            backend="shadow", stats=shadow)
        assert shadow.mismatches == 0

        row = {tier: _best_ms(tiers[tier], case.variants)
               for tier in TIERS}
        for tier in TIERS:
            aggregate[tier] += row[tier]
        report(f"{case.workload:14} " +
               " ".join(f"{row[tier]:9.3f}" for tier in TIERS))
        bench_record(case.workload, variants=len(case.variants),
                     shadow_runs=shadow.shadow_runs,
                     **{f"{tier}_ms": round(row[tier], 4)
                        for tier in TIERS})

    report(f"{'AGGREGATE':14} " +
           " ".join(f"{aggregate[tier]:9.3f}" for tier in TIERS))
    bench_record("aggregate",
                 **{f"{tier}_ms": round(aggregate[tier], 4)
                    for tier in TIERS})
    assert aggregate["fused"] < aggregate["cogen"] \
        < aggregate["offline"] < aggregate["online"], aggregate


def _skewed_stream(head: tuple[str, ...],
                   tail: Sequence[tuple[str, ...]],
                   length: int) -> list[tuple[str, ...]]:
    """Deterministic skew: the head spec every other slot, distinct
    tail specs filling the rest."""
    stream, pending = [], iter(tail)
    for slot in range(length):
        stream.append(head if slot % 2 == 0 else next(pending, head))
    return stream


def test_service_amortization(report, bench_record,
                              track_service_stats):
    """Warm same-source multi-spec throughput: engine ``genext`` beats
    engine ``offline`` by >= 2x on a skewed stream of *literal* specs
    (distinct exponents), because one emitted module covers the whole
    generalized-pattern class while offline re-analyzes each distinct
    exact pattern."""
    source = WORKLOADS["power"].source
    head = ("dyn", "10")
    length = 60
    # One stream per measurement pass, each with a *fresh* tail of
    # exponents the service has never seen: the amortization claim is
    # about previously-unseen members of a known pattern class, and a
    # repeated tail would let offline's analysis memo absorb it.
    streams = [
        _skewed_stream(head, [("dyn", str(n))
                              for n in range(3 + 100 * p,
                                             33 + 100 * p)], length)
        for p in range(3)]

    # Warm the per-worker tiers on the head spec only: the genext
    # module for the pattern class exists, offline has analyzed just
    # the head — the realistic "service has seen this program" state.
    for engine in ("offline", "genext"):
        SpecializationService(workers=0).run_one(
            SpecRequest.create(source, head, engine=engine))

    elapsed = {}
    for engine in ("offline", "genext"):
        # Best of three passes, each through a fresh service (cold
        # LRU, warm worker tiers): one slow pass on a noisy box must
        # not decide the throughput claim.
        for stream in streams:
            service = SpecializationService(workers=0)
            requests = [SpecRequest.create(source, specs,
                                           engine=engine)
                        for specs in stream]
            start = perf_counter()
            results = service.run_batch(requests)
            seconds = perf_counter() - start
            elapsed[engine] = min(elapsed.get(engine, seconds),
                                  seconds)
            assert all(not result.degraded for result in results)
        track_service_stats(service.stats)
        if engine == "genext":
            snapshot = service.stats.as_dict()
            assert snapshot["genext"]["hits"] == length
            assert snapshot["genext"]["emits"] == 0
        else:
            assert service.stats.analysis_memo_misses >= 25

    ratio = elapsed["offline"] / elapsed["genext"]
    throughput = {engine: length / seconds
                  for engine, seconds in elapsed.items()}
    report(f"skewed stream ({length} requests, one source): "
           f"offline {throughput['offline']:.0f} req/s, "
           f"genext {throughput['genext']:.0f} req/s "
           f"({ratio:.2f}x)")
    bench_record("service_amortization",
                 requests=length,
                 offline_seconds=round(elapsed["offline"], 4),
                 genext_seconds=round(elapsed["genext"], 4),
                 offline_rps=round(throughput["offline"], 1),
                 genext_rps=round(throughput["genext"], 1),
                 speedup=round(ratio, 2))
    assert ratio >= 2.0, elapsed
