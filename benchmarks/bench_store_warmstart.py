"""Experiment: warm restart from the persistent artifact store.

The amortization argument (Consel & Khoo §6, bench_amortization.py)
says specialization pays off when residuals are *reused* — but until
the store existed, every reuse pool died with the process.  This bench
measures the claim behind ``repro.store``: a service restarted on a
warm store serves an identical manifest with **zero specializations**
— every request collapses to a disk read — and its per-request p50
latency drops accordingly.

Shape: cold run (empty store) pays full specialization cost and writes
behind; a fresh service on the same store file (the "restart") serves
byte-identical residuals at pure-cache-hit latency.
"""

from __future__ import annotations

import statistics
from time import perf_counter

from repro.service import SpecializationService, SpecRequest
from repro.workloads import WORKLOADS


def build_requests() -> list[SpecRequest]:
    """A small mixed manifest: engines × workloads, all cacheable."""
    return [
        SpecRequest.create(source=WORKLOADS["gcd"].source,
                           specs=["48", "18"], id="gcd"),
        SpecRequest.create(source=WORKLOADS["power"].source,
                           specs=["dyn", "10"], id="power-10"),
        SpecRequest.create(source=WORKLOADS["power"].source,
                           specs=["dyn", "12"], engine="offline",
                           id="power-off"),
        SpecRequest.create(source=WORKLOADS["inner_product"].source,
                           specs=["size=4", "dyn"], id="iprod"),
        SpecRequest.create(source=WORKLOADS["poly_eval"].source,
                           specs=["size=4", "dyn"], id="poly"),
        SpecRequest.create(source=WORKLOADS["binary_search"].source,
                           specs=["size=7", "dyn"], id="bsearch"),
    ]


def run_manifest(requests, store_path):
    """One service lifetime over the manifest, per-request latencies
    measured; returns (latencies, results, stats)."""
    latencies = []
    with SpecializationService(workers=0,
                               store_path=store_path) as service:
        results = []
        for request in requests:
            started = perf_counter()
            results.append(service.run_one(request))
            latencies.append(perf_counter() - started)
        return latencies, results, service.stats


def p50_ms(latencies) -> float:
    return statistics.median(latencies) * 1e3


def test_warm_restart_is_pure_cache_hits(benchmark, report,
                                         bench_record,
                                         track_service_stats,
                                         tmp_path):
    requests = build_requests()
    store_path = tmp_path / "store.db"

    cold_latencies, cold_results, cold_stats = \
        run_manifest(requests, store_path)
    assert not any(result.degraded for result in cold_results)
    assert cold_stats.store_writes == len(requests)

    # Every benchmark round is a fresh service on the warm store —
    # a restart each time.
    warm_latencies, warm_results, warm_stats = benchmark(
        run_manifest, requests, store_path)
    track_service_stats(warm_stats)

    # The acceptance bar: zero specializations on the warm path...
    assert warm_stats.store_hits == len(requests)
    assert warm_stats.degraded == 0
    assert warm_stats.completed == len(requests)
    assert all(result.cached for result in warm_results)
    # ...and byte-identical residuals.
    assert [r.residual for r in warm_results] \
        == [r.residual for r in cold_results]

    cold_p50 = p50_ms(cold_latencies)
    warm_p50 = p50_ms(warm_latencies)
    assert warm_p50 < cold_p50, \
        "a store hit should be cheaper than a specialization"
    speedup = cold_p50 / warm_p50 if warm_p50 else float("inf")
    report(f"cold p50 {cold_p50:.3f} ms over {len(requests)} "
           f"requests (specialize + write-behind)",
           f"warm-restart p50 {warm_p50:.3f} ms "
           f"({speedup:.1f}x, 0 specializations, "
           f"{warm_stats.store_hits} store hits)")
    bench_record("warmstart",
                 requests=len(requests),
                 cold_p50_ms=round(cold_p50, 3),
                 warm_p50_ms=round(warm_p50, 3),
                 speedup=round(speedup, 2),
                 store_hits=warm_stats.store_hits,
                 specializations_on_warm_path=0)


def test_write_behind_overhead_on_the_cold_path(report, bench_record,
                                                tmp_path):
    """What persistence costs the *first* run: the same manifest cold
    with and without a store.  Report-only — the absolute numbers are
    workload-sized, the point is that the overhead is a handful of
    SQLite commits."""
    requests = build_requests()
    run_manifest(requests, None)        # warmup: imports, pyc, caches
    bare_latencies, _, _ = run_manifest(requests, None)
    stored_latencies, _, _ = run_manifest(requests,
                                          tmp_path / "store.db")
    bare = p50_ms(bare_latencies)
    stored = p50_ms(stored_latencies)
    overhead = (stored / bare - 1.0) * 100 if bare else 0.0
    report(f"cold p50 without store {bare:.3f} ms, "
           f"with store {stored:.3f} ms "
           f"(write-behind overhead {overhead:+.1f}%)")
    bench_record("write_behind_overhead",
                 bare_p50_ms=round(bare, 3),
                 stored_p50_ms=round(stored, 3),
                 overhead_pct=round(overhead, 2))
