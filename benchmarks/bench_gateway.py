"""Experiment: gateway overload behavior and headroom latency.

The gateway's whole reason to exist is behavior *under load you did
not plan for*: a bounded admission queue that sheds with ``429`` +
``Retry-After`` instead of queueing until the process falls over.
This bench measures that contract with an open-loop load generator
(requests are launched on a fixed schedule whether or not earlier
ones finished — the arrival pattern a real overload has, which a
closed loop cannot produce):

1. **Capacity** — a corpus of unique-fingerprint requests (every one
   a cache miss) with a deterministic 5 ms service-time floor
   (injected at the ``worker.execute`` seam, same plan on every
   service in the comparison) is pushed through the blocking service
   directly; its sustained rate defines 1×, and its per-request p99
   is the baseline the gateway is held to.  The floor is what makes
   "capacity" well-defined and host-independent: without it the hot
   cached head answers in microseconds and "2×" means whatever the
   host's cache-hit rate happens to be.
2. **Headroom (0.8×)** — offered load below capacity: nothing may
   shed, and end-to-end p99 (HTTP + admission + submit queue + wave)
   must stay within 1.5× of the direct path's p99.
3. **Overload (2×)** — offered load at double capacity: the gateway
   must shed (shed rate > 0), answer every request (no uncaught
   exceptions, ``internal_errors == 0``), keep the queue at its bound
   (high watermark ≤ max_queue + reserve), and keep memory flat
   (ru_maxrss growth is recorded and bounded).

Byte-identity rides along on a separate Zipf-mixed corpus (a hot
cached head, a cold specialize-every-time tail, no injected floor):
every 200-response's residual is compared against a fresh blocking
service — the front door must not change answers, only arbitrate
access to them.

``BENCH_gateway.json`` rows: ``capacity`` (direct path),
``headroom_0.8x`` and ``overload_2x`` (throughput, p50/p99 seconds,
shed rate, status counts, RSS growth).
"""

from __future__ import annotations

import asyncio
import json
import random
import resource
import statistics
import threading
import time

from repro.gateway import GatewayServer
from repro.service import SpecializationService, SpecRequest
from repro.workloads import WORKLOADS

MAX_QUEUE = 32
#: Never offer more than this, however fast the host measures.
RATE_CEILING = 1500.0
#: Deterministic per-request service-time floor for the load tests
#: (a latency injection at ``worker.execute``; cache misses only,
#: which is why the load corpora are all-unique fingerprints).
SERVICE_FLOOR_SECONDS = 0.02
FLOOR_PLAN = {"seed": 1, "seams": {
    "worker.execute": {"kinds": ["latency"], "every": 1,
                       "latency_seconds": SERVICE_FLOOR_SECONDS}}}


def floored_service() -> SpecializationService:
    return SpecializationService(workers=0, fault_plan=FLOOR_PLAN)


def unique_payloads(count: int) -> list[dict]:
    """``count`` requests with pairwise-distinct fingerprints (the
    first gcd operand varies per index), so every one is a cache
    miss and pays the injected floor.  ``gcd(n, 1)`` is a single
    Euclid step regardless of ``n``, so the real work is constant:
    service time is the floor, deterministically."""
    source = WORKLOADS["gcd"].source
    return [{"source": source,
             "specs": [str(1000 + index), "1"],
             "id": f"req-{index}"}
            for index in range(count)]


# -- the Zipf mix (byte-identity corpus) ------------------------------------

def _population() -> list[tuple[str, list[str]]]:
    hot = [
        ("gcd", ["48", "18"]),
        ("power", ["dyn", "8"]),
        ("sign_pipeline", ["sign=pos", "dyn"]),
        ("gcd", ["50", "15"]),
    ]
    tail = [("power", ["dyn", str(3 + k)]) for k in range(24)]
    tail += [("gcd", [str(6 * (k + 2)), str(4 * (k + 1))])
             for k in range(24)]
    return hot + tail


def zipf_payloads(seed: int, count: int) -> list[dict]:
    """``count`` request payloads drawn Zipf-style: weight 1/rank, so
    the head dominates (cache hits) but the tail keeps arriving
    (real specialization work)."""
    population = _population()
    weights = [1.0 / rank
               for rank in range(1, len(population) + 1)]
    rng = random.Random(seed)
    payloads = []
    for index, (name, specs) in enumerate(
            rng.choices(population, weights=weights, k=count)):
        payloads.append({"source": WORKLOADS[name].source,
                         "specs": specs, "id": f"req-{index}"})
    return payloads


# -- the direct (blocking) baseline -----------------------------------------

_BASELINE: dict = {}


def direct_baseline(count: int = 150) -> dict:
    """Per-request seconds for the unique-fingerprint corpus through
    the blocking service (floor plan installed); measured once per
    session."""
    if _BASELINE:
        return _BASELINE
    payloads = unique_payloads(count)
    with floored_service() as service:
        seconds = []
        for payload in payloads:
            request = SpecRequest.from_dict(payload)
            began = time.perf_counter()
            result = service.run_one(request)
            seconds.append(time.perf_counter() - began)
            assert not result.degraded, result.reason
    total = sum(seconds)
    _BASELINE.update({
        "requests": count,
        "capacity_rps": count / total,
        "p50": statistics.quantiles(seconds, n=100)[49],
        "p99": statistics.quantiles(seconds, n=100)[98],
    })
    return _BASELINE


# -- a gateway on a background event loop -----------------------------------

class _Gateway:
    def __init__(self, service, **kwargs) -> None:
        self.service = service
        self._kwargs = kwargs
        self.gateway = None
        self.port = None
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.gateway = GatewayServer(self.service, port=0,
                                     **self._kwargs)
        await self.gateway.start()
        self.port = self.gateway.port
        self._ready.set()
        await self._stop.wait()
        await self.gateway.aclose()

    def __enter__(self) -> "_Gateway":
        self._thread.start()
        assert self._ready.wait(10)
        return self

    def __exit__(self, *exc) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)


# -- the open-loop HTTP load generator --------------------------------------

async def _one_request(port: int, payload: dict, delay: float):
    await asyncio.sleep(delay)
    began = time.perf_counter()
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = json.dumps(payload).encode()
        writer.write((f"POST /v1/specialize HTTP/1.1\r\nHost: b\r\n"
                      f"Connection: close\r\n"
                      f"Content-Length: {len(body)}\r\n\r\n"
                      ).encode() + body)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode().partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        document = json.loads(await reader.readexactly(length))
        return status, time.perf_counter() - began, document
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def drive(port: int, payloads: list[dict], offered_rate: float):
    """Launch every payload on the open-loop schedule; returns
    ``(statuses, latencies of 200s, documents of 200s, elapsed)``."""
    async def go():
        began = time.perf_counter()
        outcomes = await asyncio.gather(
            *(asyncio.wait_for(
                _one_request(port, payload, index / offered_rate),
                timeout=60)
              for index, payload in enumerate(payloads)))
        return outcomes, time.perf_counter() - began
    outcomes, elapsed = asyncio.run(go())
    statuses = [status for status, _, _ in outcomes]
    latencies = [seconds for status, seconds, _ in outcomes
                 if status == 200]
    documents = [document for status, _, document in outcomes
                 if status == 200]
    return statuses, latencies, documents, elapsed


def _p(values: list[float], q: int) -> float:
    return statistics.quantiles(values, n=100)[q - 1] \
        if len(values) >= 2 else values[0]


def _rss_kb() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


# -- the experiments --------------------------------------------------------

def test_headroom_latency_within_1_5x_of_direct(benchmark, report,
                                                bench_record):
    baseline = direct_baseline()
    rate = min(0.8 * baseline["capacity_rps"], RATE_CEILING)
    payloads = unique_payloads(250)
    # The gateway's end-to-end p99 must stay within 1.5x of the
    # blocking path (plus 20 ms of scheduler/clock grace).  A p99
    # over a few hundred requests is three samples deep — one host
    # stall at 0.8 utilization leaves a backlog that smears across
    # many of them — so the drive retries up to three times; a real
    # overhead regression fails every attempt.
    budget = 1.5 * baseline["p99"] + 0.02

    def run():
        attempts = []
        for _attempt in range(3):
            with floored_service() as service, \
                    _Gateway(service, max_queue=MAX_QUEUE) as gateway:
                outcome = drive(gateway.port, payloads, rate)
                gateway.gateway.sync_stats()
                detail = dict(gateway.gateway.service.stats
                              .gateway_detail)
            attempts.append((outcome, detail))
            if _p(outcome[1], 99) <= budget:
                break
        return attempts

    attempts = benchmark.pedantic(run, rounds=1, iterations=1)
    (statuses, latencies, _documents, elapsed), detail = \
        min(attempts, key=lambda attempt: _p(attempt[0][1], 99))
    p50, p99 = _p(latencies, 50), _p(latencies, 99)
    shed = statuses.count(429)
    assert statuses.count(200) == len(payloads) - shed
    # Below capacity nothing meaningful sheds...
    assert shed <= len(payloads) * 0.01
    all_p99 = [round(_p(attempt[0][1], 99) * 1000, 1)
               for attempt in attempts]
    assert p99 <= budget, \
        f"headroom p99 {all_p99} ms across {len(attempts)} " \
        f"attempts, all above {budget * 1000:.1f} ms (direct p99 " \
        f"{baseline['p99'] * 1000:.1f} ms)"
    assert detail["internal_errors"] == 0
    report(f"direct: {baseline['capacity_rps']:.0f} req/s, "
           f"p99 {baseline['p99'] * 1000:.2f} ms",
           f"0.8x ({rate:.0f} req/s offered): "
           f"{len(latencies) / elapsed:.0f} req/s served, "
           f"p50 {p50 * 1000:.2f} ms, p99 {p99 * 1000:.2f} ms, "
           f"{shed} shed")
    bench_record("capacity", **direct_baseline())
    bench_record("headroom_0.8x",
                 offered_rps=round(rate, 1),
                 served_rps=round(len(latencies) / elapsed, 1),
                 requests=len(payloads), shed=shed,
                 shed_rate=round(shed / len(payloads), 4),
                 p50_seconds=round(p50, 6),
                 p99_seconds=round(p99, 6),
                 direct_p99_seconds=round(baseline["p99"], 6),
                 internal_errors=detail["internal_errors"])


def test_overload_sheds_and_stays_bounded(benchmark, report,
                                          bench_record):
    baseline = direct_baseline()
    rate = min(2.0 * baseline["capacity_rps"], RATE_CEILING)
    payloads = unique_payloads(300)
    rss_before = _rss_kb()

    def run():
        with floored_service() as service, \
                _Gateway(service, max_queue=MAX_QUEUE) as gateway:
            outcome = drive(gateway.port, payloads, rate)
            gateway.gateway.sync_stats()
            detail = dict(gateway.gateway.service.stats
                          .gateway_detail)
        return outcome, detail

    (statuses, latencies, _documents, elapsed), detail = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    rss_growth_kb = _rss_kb() - rss_before
    served = statuses.count(200)
    shed = statuses.count(429)
    # Every request was answered: 200 or a deliberate 429, nothing
    # else, and the server took no uncaught exception.
    assert served + shed == len(payloads), statuses
    assert detail["internal_errors"] == 0
    # At 2x sustained capacity the gateway MUST shed...
    assert shed > 0, "no shedding at 2x capacity"
    # ...while the admission queue never grew past its bound...
    bound = MAX_QUEUE + detail["admission"]["high_reserve"]
    assert detail["admission"]["high_watermark"] <= bound
    assert detail["queue_high_watermark"] <= bound
    # ...and memory stayed flat (shedding is cheap by construction;
    # 256 MiB of growth would mean requests queued somewhere).
    assert rss_growth_kb < 256 * 1024, \
        f"RSS grew {rss_growth_kb} kB under overload"
    p50 = _p(latencies, 50) if latencies else 0.0
    p99 = _p(latencies, 99) if latencies else 0.0
    report(f"2x ({rate:.0f} req/s offered): {served} served, "
           f"{shed} shed ({shed / len(payloads):.0%}), "
           f"p50 {p50 * 1000:.2f} ms, p99 {p99 * 1000:.2f} ms, "
           f"rss +{rss_growth_kb} kB")
    bench_record("overload_2x",
                 offered_rps=round(rate, 1),
                 served_rps=round(served / elapsed, 1),
                 requests=len(payloads), served=served, shed=shed,
                 shed_rate=round(shed / len(payloads), 4),
                 p50_seconds=round(p50, 6),
                 p99_seconds=round(p99, 6),
                 queue_high_watermark=
                 detail["admission"]["high_watermark"],
                 queue_bound=bound,
                 internal_errors=detail["internal_errors"],
                 rss_growth_kb=rss_growth_kb)


def test_residuals_byte_identical_to_direct(benchmark, report,
                                            bench_record):
    """The differential oracle: whatever the gateway answered 200 to
    must carry the byte-identical residual the blocking path
    produces."""
    payloads = zipf_payloads(seed=53, count=120)

    def run():
        with SpecializationService(workers=0) as service, \
                _Gateway(service, max_queue=MAX_QUEUE) as gateway:
            return drive(gateway.port, payloads, offered_rate=200.0)

    statuses, _latencies, documents, _elapsed = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    assert statuses.count(200) == len(payloads)
    by_id = {document["id"]: document for document in documents}
    checked = 0
    with SpecializationService(workers=0) as reference:
        seen: set[str] = set()
        for payload in payloads:
            request = SpecRequest.from_dict(payload)
            if request.fingerprint() in seen:
                continue
            seen.add(request.fingerprint())
            direct = reference.run_one(request)
            document = by_id[payload["id"]]
            assert document["residual"] == direct.residual, \
                f"residual drift on {payload['id']}"
            assert document["degraded"] is False
            checked += 1
    report(f"byte-identity: {checked} unique requests verified "
           f"against the blocking path")
    bench_record("byte_identity", unique_requests=checked,
                 total_requests=len(payloads))
