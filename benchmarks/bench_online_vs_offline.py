"""Experiment: Section 1/5 claim — offline specialization is cheaper.

The paper's argument for the offline strategy: the online specializer
"must analyze the context of the computation ... repeatedly ... when
processing recursive functions", while facet analysis hoists that work
out of specialization.  We time one *specialization* under each
strategy (the offline analysis is performed once outside the timed
region, as its cost amortizes over all specializations of the same
division) and assert the shape: offline does strictly fewer facet
evaluations, and wall-clock specialization is at least as fast.
"""

import pytest

from repro.facets.abstract import AbstractSuite
from repro.facets.abstract.size import STATIC_SIZE
from repro.lang.values import VECTOR
from repro.lattice.bt import BT
from repro.offline.analysis import analyze
from repro.offline.specializer import OfflineSpecializer
from repro.online import OnlineSpecializer
from repro.workloads import WORKLOADS

SIZE = 24


@pytest.fixture
def program():
    return WORKLOADS["inner_product"].program()


@pytest.fixture
def offline_analysis(program, size_suite):
    suite = AbstractSuite(size_suite)
    pattern = [suite.input(VECTOR, bt=BT.DYNAMIC,
                           size=STATIC_SIZE)] * 2
    return analyze(program, pattern, suite)


def test_online_specialization(benchmark, report, program, size_suite):
    inputs = [size_suite.input(VECTOR, size=SIZE)] * 2

    result = benchmark(
        lambda: OnlineSpecializer(program, size_suite).specialize(
            inputs))

    report(f"online : facet evaluations="
           f"{result.stats.facet_evaluations}, "
           f"decisions={result.stats.decisions}")


def test_offline_specialization(benchmark, report, program, size_suite,
                                offline_analysis):
    inputs = [size_suite.input(VECTOR, size=SIZE)] * 2

    result = benchmark(
        lambda: OfflineSpecializer(offline_analysis,
                                   size_suite).specialize(inputs))

    report(f"offline: facet evaluations="
           f"{result.stats.facet_evaluations}, "
           f"decisions={result.stats.decisions}")


def test_shape_offline_does_less_facet_work(report, program, size_suite,
                                            offline_analysis,
                                            benchmark):
    """The headline comparison, asserted (and its rows printed)."""
    inputs = [size_suite.input(VECTOR, size=SIZE)] * 2

    def both():
        online = OnlineSpecializer(program, size_suite).specialize(
            inputs)
        offline = OfflineSpecializer(offline_analysis,
                                     size_suite).specialize(inputs)
        return online, offline

    online, offline = benchmark(both)
    assert offline.program == online.program
    assert offline.stats.facet_evaluations \
        < online.stats.facet_evaluations
    assert offline.stats.decisions < online.stats.decisions
    ratio = online.stats.facet_evaluations \
        / max(1, offline.stats.facet_evaluations)
    report(
        "strategy | facet evals | PE-time decisions",
        f"online   | {online.stats.facet_evaluations:11d} | "
        f"{online.stats.decisions:17d}",
        f"offline  | {offline.stats.facet_evaluations:11d} | "
        f"{offline.stats.decisions:17d}",
        f"facet-evaluation ratio: {ratio:.1f}x (size {SIZE})")
