"""Experiment: batch specialization throughput vs. worker count.

The service layer exists so many specialization requests can share one
process: this bench serves the same mixed corpus manifest (every
engine, most first-order workloads) through
:class:`~repro.service.SpecializationService` at 1, 2 and 4 workers
and reports requests/second.  The cross-request cache is *disabled*
(``cache_capacity=0``) so every round pays full specialization cost —
the numbers measure scheduling + worker parallelism, not memoization.

Expected shape: on this deliberately small corpus (sub-millisecond
specializations) pool startup and result plumbing dominate, so worker
counts mostly measure fixed overhead; the spread between 1 and 4
workers bounds what the scheduler costs when there is nothing to
amortize it against.  Parallelism pays off as per-request work grows.
"""

from __future__ import annotations

import pytest

from repro.service import SpecRequest, SpecializationService
from repro.workloads import WORKLOADS

#: The mixed corpus: every engine, a spread of facets and divisions.
_ROWS = [
    ("inner_product", ["size=3", "size=3"], "online"),
    ("inner_product", ["size=5", "size=5"], "online"),
    ("inner_product", ["size=3", "size=3"], "offline"),
    ("power", ["dyn", "10"], "online"),
    ("power", ["dyn", "7"], "offline"),
    ("power", ["dyn", "6"], "simple"),
    ("sign_pipeline", ["sign=pos", "dyn"], "online"),
    ("sign_pipeline", ["sign=neg", "dyn"], "online"),
    ("clamped_lookup", ["size=4", "dyn", "1", "4"], "online"),
    ("clamped_lookup", ["dyn", "interval=2:3", "1", "4"], "online"),
    ("alternating_sum", ["size=4"], "online"),
    ("alternating_sum", ["size=4"], "offline"),
    ("poly_eval", ["size=3", "dyn"], "online"),
    ("gcd", ["48", "18"], "online"),
    ("gcd", ["48", "18"], "simple"),
    ("binary_search", ["size=7", "dyn"], "online"),
]


def corpus_requests() -> list[SpecRequest]:
    return [SpecRequest.create(
        source=WORKLOADS[name].source, specs=specs, engine=engine,
        id=f"{name}-{index}")
        for index, (name, specs, engine) in enumerate(_ROWS)]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_batch_throughput(benchmark, report, track_service_stats,
                          bench_record, workers):
    requests = corpus_requests()

    def run():
        with SpecializationService(workers=workers,
                                   cache_capacity=0) as service:
            results = service.run_batch(requests)
        track_service_stats(service.stats)
        return results

    results = benchmark.pedantic(run, rounds=3, iterations=1,
                                 warmup_rounds=1)
    degraded = sum(result.degraded for result in results)
    assert degraded == 0
    seconds = benchmark.stats.stats.mean
    report(f"workers={workers}: {len(requests)} requests in "
           f"{seconds * 1000:.0f} ms "
           f"({len(requests) / seconds:.1f} req/s), "
           f"{degraded} degraded")
    bench_record(f"workers_{workers}",
                 requests=len(requests), degraded=degraded,
                 seconds=round(seconds, 6),
                 requests_per_second=round(len(requests) / seconds, 1))


def test_batch_throughput_compiled_backend(benchmark, report,
                                           track_service_stats,
                                           bench_record):
    """The compiled variant: every successful residual is additionally
    lowered to Python and its artifact attached.  The delta against
    the interp row above is the per-request compilation tax the
    artifact cache then amortizes across repeat requests."""
    requests = corpus_requests()

    stats_boxes = []

    def run():
        with SpecializationService(workers=0, cache_capacity=0,
                                   backend="compiled") as service:
            results = service.run_batch(requests)
        track_service_stats(service.stats)
        stats_boxes.append(service.backend_stats)
        return results

    results = benchmark.pedantic(run, rounds=3, iterations=1,
                                 warmup_rounds=1)
    degraded = sum(result.degraded for result in results)
    assert degraded == 0
    compiled = sum(result.compiled is not None for result in results)
    assert compiled == len(requests), \
        "every successful request should carry an artifact"
    backend = stats_boxes[-1]
    seconds = benchmark.stats.stats.mean
    report(f"backend=compiled: {len(requests)} requests in "
           f"{seconds * 1000:.0f} ms "
           f"({len(requests) / seconds:.1f} req/s), "
           f"{backend.compiles} compiles "
           f"({backend.compile_seconds * 1000:.0f} ms compiling)")
    bench_record("compiled_backend",
                 requests=len(requests),
                 seconds=round(seconds, 6),
                 requests_per_second=round(len(requests) / seconds, 1),
                 compiles=backend.compiles,
                 compile_seconds=round(backend.compile_seconds, 6))
