"""Experiment: Figure 2 — the conventional-PE baseline.

Times ``SPE`` on its classic wins (static gcd, power with a static
exponent) and documents its loss on the paper's motivating example:
with dynamic vectors it achieves no folds at all on the inner product,
while the facet-parameterized evaluator (bench_fig8) folds the whole
recursion away from the size alone.
"""

import pytest

from repro.baselines.simple_pe import DYN, specialize_simple
from repro.lang.interp import Interpreter
from repro.workloads import WORKLOADS


def test_gcd_fully_static(benchmark, report):
    program = WORKLOADS["gcd"].program()

    result = benchmark(specialize_simple, program, [1071, 462])

    assert str(result.program).strip() == "(define (gcd) 21)"
    report(f"gcd(1071, 462) folded to a constant in "
           f"{result.stats.steps} PE steps")


def test_power_static_exponent(benchmark, report):
    program = WORKLOADS["power"].program()

    result = benchmark(specialize_simple, program, [DYN, 16])

    assert Interpreter(result.program).run(2) == 65536
    report(f"power specialized on n=16: folds={result.stats.prim_folds},"
           f" unfoldings={result.stats.unfoldings}")


def test_inner_product_gets_nothing(benchmark, report):
    """The motivating negative result (Section 1 / Section 6)."""
    program = WORKLOADS["inner_product"].program()

    result = benchmark(specialize_simple, program, [DYN, DYN])

    assert result.stats.prim_folds == 0
    assert result.stats.if_reductions == 0
    report("simple PE on iprod with dynamic vectors: "
           f"folds={result.stats.prim_folds}, "
           f"if reductions={result.stats.if_reductions} "
           "(nothing — the Size facet is what the paper adds)")
