"""Experiment: amortizing one facet analysis over many specializations.

The offline strategy's break-even: analysis cost is paid once per
binding-time *pattern*, specialization cost per *instance*.  This bench
measures both and prints the crossover — after how many
specializations the offline pipeline (analysis + k cheap
specializations) beats k online specializations.  Paper shape: a small
constant.
"""

import time

import pytest

from repro.facets.abstract import AbstractSuite
from repro.facets.abstract.size import STATIC_SIZE
from repro.lang.values import VECTOR
from repro.lattice.bt import BT
from repro.offline.analysis import analyze
from repro.offline.specializer import OfflineSpecializer
from repro.online import OnlineSpecializer
from repro.workloads import WORKLOADS

SIZES = list(range(2, 18))


@pytest.fixture
def program():
    return WORKLOADS["poly_eval"].program()


def test_online_burst(benchmark, report, program, size_suite):
    def burst():
        total = 0
        for size in SIZES:
            inputs = [size_suite.input(VECTOR, size=size),
                      size_suite.unknown("float")]
            result = OnlineSpecializer(
                program, size_suite).specialize(inputs)
            total += result.stats.facet_evaluations
        return total

    total = benchmark(burst)
    report(f"online burst over {len(SIZES)} sizes: "
           f"{total} facet evaluations")


def test_offline_burst(benchmark, report, program, size_suite):
    abstract_suite = AbstractSuite(size_suite)
    pattern = [abstract_suite.input(VECTOR, bt=BT.DYNAMIC,
                                    size=STATIC_SIZE),
               abstract_suite.dynamic("float")]
    analysis = analyze(program, pattern, abstract_suite)

    def burst():
        total = 0
        for size in SIZES:
            inputs = [size_suite.input(VECTOR, size=size),
                      size_suite.unknown("float")]
            result = OfflineSpecializer(
                analysis, size_suite).specialize(inputs)
            total += result.stats.facet_evaluations
        return total

    total = benchmark(burst)
    report(f"offline burst over {len(SIZES)} sizes: "
           f"{total} facet evaluations (analysis done once)")


def test_crossover_point(report, bench_record, program, size_suite,
                         benchmark):
    abstract_suite = AbstractSuite(size_suite)
    pattern = [abstract_suite.input(VECTOR, bt=BT.DYNAMIC,
                                    size=STATIC_SIZE),
               abstract_suite.dynamic("float")]

    def measure():
        start = time.perf_counter()
        analysis = analyze(program, pattern, abstract_suite)
        analysis_cost = time.perf_counter() - start

        online_costs = []
        offline_costs = []
        for size in SIZES:
            inputs = [size_suite.input(VECTOR, size=size),
                      size_suite.unknown("float")]
            start = time.perf_counter()
            OnlineSpecializer(program, size_suite).specialize(inputs)
            online_costs.append(time.perf_counter() - start)
            start = time.perf_counter()
            OfflineSpecializer(analysis, size_suite).specialize(inputs)
            offline_costs.append(time.perf_counter() - start)
        return analysis_cost, online_costs, offline_costs

    analysis_cost, online_costs, offline_costs = benchmark(measure)
    cumulative_online = 0.0
    cumulative_offline = analysis_cost
    crossover = None
    for k, (online_cost, offline_cost) in enumerate(
            zip(online_costs, offline_costs), start=1):
        cumulative_online += online_cost
        cumulative_offline += offline_cost
        if crossover is None and cumulative_offline \
                <= cumulative_online:
            crossover = k
    report(f"analysis cost {analysis_cost * 1e3:.2f} ms; "
           f"mean online spec "
           f"{1e3 * sum(online_costs) / len(SIZES):.2f} ms; "
           f"mean offline spec "
           f"{1e3 * sum(offline_costs) / len(SIZES):.2f} ms; "
           f"offline pays off after "
           f"{crossover if crossover else '>%d' % len(SIZES)} "
           f"specializations")
    bench_record("crossover",
                 analysis_ms=round(analysis_cost * 1e3, 3),
                 mean_online_ms=round(
                     1e3 * sum(online_costs) / len(SIZES), 3),
                 mean_offline_ms=round(
                     1e3 * sum(offline_costs) / len(SIZES), 3),
                 crossover=crossover)
