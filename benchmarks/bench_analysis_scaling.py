"""Experiment: facet-analysis cost scaling.

The paper guarantees termination through finite-height lattices; the
practical question is how analysis cost grows with (a) program size and
(b) the number of facets in the product.  Shape: roughly linear in
program size for a fixed division, and linear in the facet count (each
product operator evaluates one operator per facet).
"""

import pytest

from repro.facets import (
    FacetSuite, IntervalFacet, ParityFacet, SignFacet, VectorSizeFacet)
from repro.facets.abstract import AbstractSuite
from repro.lang.ast import Call, Const, FunDef, If, Prim, Var
from repro.lang.program import Program
from repro.offline.analysis import analyze


def _chain_program(depth: int) -> Program:
    """``f0 -> f1 -> ... -> f_depth``, each doing a little arithmetic
    on a static counter and a dynamic payload."""
    defs = []
    for i in range(depth):
        body = Call(f"f{i + 1}", (
            Prim("-", (Var("n"), Const(1))),
            Prim("+", (Var("x"), Var("x")))))
        test = Prim("<=", (Var("n"), Const(0)))
        defs.append(FunDef(f"f{i}", ("n", "x"),
                           If(test, Var("x"), body)))
    defs.append(FunDef(f"f{depth}", ("n", "x"),
                       Prim("*", (Var("x"), Var("x")))))
    return Program(tuple(defs))


@pytest.mark.parametrize("depth", [4, 16, 64])
def test_scaling_with_program_size(benchmark, report, depth):
    program = _chain_program(depth)
    suite = AbstractSuite(FacetSuite([SignFacet(), ParityFacet()]))
    inputs = [suite.static("int"), suite.dynamic("int")]

    analysis = benchmark(analyze, program, inputs, suite)

    assert len(analysis.signatures) == depth + 1
    report(f"depth {depth:3d}: functions={len(analysis.signatures)}, "
           f"h iterations={analysis.stats.iterations}, "
           f"zeta evaluations={analysis.stats.evaluations}")


@pytest.mark.parametrize("facet_count", [0, 1, 2, 4])
def test_scaling_with_facet_count(benchmark, report, facet_count):
    from repro.workloads import WORKLOADS
    program = WORKLOADS["inner_product"].program()
    all_facets = [SignFacet(), ParityFacet(), IntervalFacet(),
                  VectorSizeFacet()]
    suite = AbstractSuite(FacetSuite(all_facets[:facet_count]))
    inputs = [suite.dynamic("vector")] * 2

    analysis = benchmark(analyze, program, inputs, suite)

    report(f"{facet_count} facets: "
           f"h iterations={analysis.stats.iterations}, "
           f"zeta evaluations={analysis.stats.evaluations}")
