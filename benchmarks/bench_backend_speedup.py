"""Experiment: compiled residuals beat interpreted residuals on the
wall clock — the backend's reason to exist.

``bench_residual_speedup.py`` compares *step counts* inside one
interpreter: specialization removes work, but every remaining step
still pays tree-walking overhead.  This experiment completes the
paper's Theorem 1 story on executed code: for each workload we
specialize once, then time three executions of the same computation —

* the **source** program, interpreted, on the full argument vector;
* the **residual**, interpreted, on the dynamic arguments;
* the **residual**, compiled by :mod:`repro.backend`, on the same
  dynamic arguments —

and report both ratios.  The acceptance bar is a **median >= 5x**
compiled-over-interpreted-residual speedup across the suite, with the
three answers agreeing (through the shared approx-equal helper) on
every case.  Rows land in ``BENCH_backend_speedup.json`` when
``REPRO_BENCH_JSON_DIR`` is set — the artifact CI archives.
"""

from __future__ import annotations

import statistics
import time

from repro.backend import compile_program
from repro.lang.interp import Interpreter, run_program
from repro.lang.parser import parse_program
from repro.service import SpecRequest, SpecializationService
from repro.service.specs import parse_value
from repro.workloads import WORKLOADS

ROUNDS = 7
MIN_MEDIAN_SPEEDUP = 5.0


def _vec(n: int, scale: float = 1.0) -> str:
    return "#(" + " ".join(str(scale * (i + 1)) for i in range(n)) + ")"


#: (workload, specs, concrete source arguments).  Literal specs make
#: the argument static (it drops out of the goal); ``size=``/``dyn``
#: specs keep it dynamic, and the same concrete value is what the
#: residual then runs on.
CASES = [
    ("inner_product", ["size=16", "size=16"],
     [_vec(16), _vec(16, 0.5)]),
    ("power", ["dyn", "12"], ["3", "12"]),
    ("alternating_sum", ["size=16"], [_vec(16)]),
    ("poly_eval", ["size=8", "dyn"], [_vec(8), "2.0"]),
    ("binary_search", ["size=15", "dyn"], [_vec(15), "11.0"]),
    ("mini_vm", ["#(3 1 10 2 3 0)", "dyn"],
     ["#(3 1 10 2 3 0)", "3.5"]),
    ("gcd", ["dyn", "18"], ["1071", "18"]),
    ("ho_pipeline", ["size=8", "2.0"], [_vec(8), "2.0"]),
]


def _is_literal_spec(spec: str) -> bool:
    return spec[0].isdigit() or spec[0] in "#-" or spec in (
        "true", "false")


def _specialize(name: str, specs: list[str]):
    request = SpecRequest.create(
        source=WORKLOADS[name].source, specs=specs, id=name)
    with SpecializationService(workers=0) as service:
        (result,) = service.run_batch([request])
    assert not result.degraded, f"{name}: {result.reason}"
    return parse_program(result.residual)


def _median_seconds(fn, args, rounds: int = ROUNDS,
                    budget: float = 0.05) -> float:
    """Median per-call wall-clock, auto-scaling the inner iteration
    count so one round is long enough for the clock to resolve."""
    iterations = 1
    while True:
        started = time.perf_counter()
        for _ in range(iterations):
            fn(*args)
        elapsed = time.perf_counter() - started
        if elapsed >= budget / rounds or iterations >= 4096:
            break
        iterations *= 4
    samples = []
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(iterations):
            fn(*args)
        samples.append((time.perf_counter() - started) / iterations)
    return statistics.median(samples)


def _case_row(name: str, specs: list[str], raw_args: list[str],
              values_close) -> dict:
    program = WORKLOADS[name].program()
    source_args = [parse_value(text) for text in raw_args]
    dynamic_args = [value for spec, value in zip(specs, source_args)
                    if not _is_literal_spec(spec)]

    residual = _specialize(name, specs)
    compiled = compile_program(residual)
    interp = Interpreter(residual)

    expected = run_program(program, *source_args)
    values_close(expected, interp.run(*dynamic_args),
                 context=f"{name} interpreted residual")
    values_close(expected, compiled.run(*dynamic_args),
                 context=f"{name} compiled residual")

    source_s = _median_seconds(
        lambda *a: run_program(program, *a), source_args)
    interp_s = _median_seconds(interp.run, dynamic_args)
    compiled_s = _median_seconds(compiled.run, dynamic_args)
    return {
        "workload": name, "specs": specs,
        "source_us": round(source_s * 1e6, 3),
        "interp_residual_us": round(interp_s * 1e6, 3),
        "compiled_residual_us": round(compiled_s * 1e6, 3),
        "compiled_vs_interp": round(interp_s / compiled_s, 2),
        "compiled_vs_source": round(source_s / compiled_s, 2),
    }


def test_compiled_residuals_beat_interpreted_residuals(
        benchmark, report, values_close, bench_record):
    rows = [_case_row(name, specs, args, values_close)
            for name, specs, args in CASES]

    # The pytest-benchmark column times the headline case end to end
    # (compiled inner product over dynamic vectors).
    residual = _specialize("inner_product", ["size=16", "size=16"])
    compiled = compile_program(residual)
    a = parse_value(_vec(16))
    b = parse_value(_vec(16, 0.5))
    benchmark(lambda: compiled.run(a, b))

    lines = ["workload          | interp us | compiled us | vs interp"
             " | vs source"]
    for row in rows:
        lines.append(
            f"{row['workload']:17s} | {row['interp_residual_us']:9.2f}"
            f" | {row['compiled_residual_us']:11.2f}"
            f" | {row['compiled_vs_interp']:8.1f}x"
            f" | {row['compiled_vs_source']:8.1f}x")
        bench_record(row["workload"], **row)

    speedups = [row["compiled_vs_interp"] for row in rows]
    median = statistics.median(speedups)
    lines.append(f"median compiled-over-interpreted speedup: "
                 f"{median:.1f}x (bar: {MIN_MEDIAN_SPEEDUP:.0f}x)")
    report(*lines)
    bench_record("summary", median_compiled_vs_interp=round(median, 2),
                 bar=MIN_MEDIAN_SPEEDUP)
    assert median >= MIN_MEDIAN_SPEEDUP, \
        f"median compiled speedup {median:.2f}x under the " \
        f"{MIN_MEDIAN_SPEEDUP:.0f}x acceptance bar"


def test_shadow_verification_is_clean_across_the_suite(
        report, bench_record):
    """Zero mismatches across the suite: every case double-run through
    ``shadow_run`` — the acceptance criterion stated by the issue."""
    from repro.backend import shadow_run
    from repro.observability import BackendStats
    stats = BackendStats()
    for name, specs, raw_args in CASES:
        residual = _specialize(name, specs)
        source_args = [parse_value(text) for text in raw_args]
        dynamic_args = [value
                        for spec, value in zip(specs, source_args)
                        if not _is_literal_spec(spec)]
        shadow_run(residual, dynamic_args, stats=stats)
    assert stats.mismatches == 0
    assert stats.shadow_runs == len(CASES)
    report(f"shadow: {stats.shadow_runs} comparisons, "
           f"{stats.mismatches} mismatches")
    bench_record("shadow", runs=stats.shadow_runs,
                 mismatches=stats.mismatches)
