"""Ablation: constraint propagation (the Section 4.4 extension).

Measures what propagating predicate properties into branches buys on
programs whose branch conditions encode facet information (sign tests,
range guards).  Shape: with propagation on, downstream tests fold and
residuals shrink; the specialization itself costs slightly more (the
refinement work) — the classic precision/effort trade.
"""

import pytest

from repro.facets import FacetSuite, IntervalFacet, SignFacet
from repro.lang.ast import If, walk
from repro.lang.parser import parse_program
from repro.lang.interp import Interpreter, run_program
from repro.online import PEConfig, specialize_online

ABS_CLASSIFY_SRC = """
(define (main x)
  (if (< x 0)
      (classify (neg x))
      (classify x)))
(define (classify y)
  (if (< y 0) -1 (if (> y 0) 1 0)))
"""

GUARDED_CHAIN_SRC = """
(define (main i)
  (if (>= i 1)
      (if (<= i 100)
          (step i)
          0)
      0))
(define (step i)
  (if (>= i 1)
      (if (<= i 100)
          (* i 2)
          -1)
      -1))
"""


def _conditionals(program):
    return sum(1 for d in program.defs
               for n in walk(d.body) if isinstance(n, If))


@pytest.fixture
def suite():
    return FacetSuite([SignFacet(), IntervalFacet()])


@pytest.mark.parametrize("enabled", [False, True],
                         ids=["off", "on"])
def test_abs_classify(benchmark, report, suite, enabled):
    program = parse_program(ABS_CLASSIFY_SRC)
    config = PEConfig(propagate_constraints=enabled)
    inputs = [suite.unknown("int")]

    result = benchmark(specialize_online, program, inputs, suite,
                       config)

    conditionals = _conditionals(result.program)
    report(f"abs_classify, propagation {'on' if enabled else 'off'}: "
           f"{conditionals} residual conditionals, "
           f"{result.stats.constraint_refinements} refinements")
    for x in (-3, 0, 3):
        assert Interpreter(result.program).run(x) \
            == run_program(program, x)
    if enabled:
        assert conditionals <= 2
        assert result.stats.constraint_refinements > 0
    else:
        assert conditionals >= 3


@pytest.mark.parametrize("enabled", [False, True],
                         ids=["off", "on"])
def test_guarded_chain(benchmark, report, suite, enabled):
    program = parse_program(GUARDED_CHAIN_SRC)
    config = PEConfig(propagate_constraints=enabled)
    inputs = [suite.unknown("int")]

    result = benchmark(specialize_online, program, inputs, suite,
                       config)

    conditionals = _conditionals(result.program)
    report(f"guarded_chain, propagation {'on' if enabled else 'off'}: "
           f"{conditionals} residual conditionals")
    for i in (0, 1, 50, 100, 101):
        assert Interpreter(result.program).run(i) \
            == run_program(program, i)
    if enabled:
        # The re-checks inside `step` must be gone.
        assert conditionals == 2
    else:
        assert conditionals == 4
