"""Experiment: the fault-injection layer's cost and the chaos soak's
shape.

Two claims are measured here:

* **Disabled injection is free.**  Every failure seam in the service
  carries a ``fault_point`` / ``fault_payload`` call; with no plan
  installed each is a single module-global ``None`` check.  The bench
  times a fixed service batch with the seams disabled against the same
  batch with every seam call swapped for a literal no-op (the closest
  thing to compiling them out), interleaved paired-median style, and
  asserts the instrumented path stays within 2%.

* **The chaos soak is bounded.**  One soak run (the same seeded
  FaultPlan shape as ``tests/chaos/``) is pushed through the full
  service and its outcome — request throughput, degraded fraction,
  per-seam injection counts, breaker/quarantine activity — is recorded
  to ``BENCH_chaos_soak.json`` so CI can watch the degradation
  trajectory over time.
"""

from __future__ import annotations

import random
import statistics
import time

import importlib

import repro.faults as faults_pkg
import repro.service.scheduler as scheduler_mod
import repro.service.worker as worker_mod
import repro.store.store as store_mod

# ``import repro.service.serve`` would resolve to the ``serve``
# *function* the package re-exports, not the module.
serve_mod = importlib.import_module("repro.service.serve")
from repro.faults import uninstall
from repro.service import SpecRequest, SpecializationService
from repro.workloads import WORKLOADS

ROUNDS = 8

#: The ISSUE's acceptance bound for faults-disabled overhead, plus an
#: absolute floor so timer noise cannot fail the relative check.
MAX_OVERHEAD = 0.02
NOISE_FLOOR_SECONDS = 0.002

#: Module attributes holding a by-name binding of ``fault_point``;
#: ``repro.faults`` itself covers the lazy importers (backend.emit,
#: genext.emit resolve it at call time).
_POINT_SITES = (store_mod, worker_mod, scheduler_mod, serve_mod,
                faults_pkg)


def _noop_point(*_args, **_kwargs):
    return None


def _noop_payload(_seam, payload, **_kwargs):
    return payload


def _strip_seams():
    """Swap every seam call for a literal no-op; returns an undo."""
    saved = [(site, site.fault_point) for site in _POINT_SITES]
    saved_payload = (store_mod.fault_payload, faults_pkg.fault_payload)
    for site in _POINT_SITES:
        site.fault_point = _noop_point
    store_mod.fault_payload = _noop_payload
    faults_pkg.fault_payload = _noop_payload

    def undo():
        for site, original in saved:
            site.fault_point = original
        store_mod.fault_payload = saved_payload[0]
        faults_pkg.fault_payload = saved_payload[1]

    return undo


def _overhead_batch() -> list[SpecRequest]:
    """A fixed, cheap, store-exercising batch: every seam on the hot
    path runs (reads, writes, worker execute, dispatch, compile)."""
    batch = []
    for index, (name, specs, engine) in enumerate([
            ("gcd", ["48", "dyn"], "online"),
            ("gcd", ["dyn", "18"], "offline"),
            ("fib", ["7"], "online"), ("fib", ["dyn"], "offline"),
            ("sign_pipeline", ["8", "dyn"], "online"),
            ("sign_pipeline", ["3", "dyn"], "online"),
            ("power", ["dyn", "5"], "offline"),
            ("power", ["2", "3"], "online"),
    ] * 2):
        batch.append(SpecRequest.create(
            WORKLOADS[name].source, specs, engine=engine,
            id=f"bench-{index}-{name}"))
    return batch


def _run_batch(tmp_path, tag: str) -> None:
    with SpecializationService(
            workers=0, backend="compiled",
            store_path=tmp_path / f"{tag}.sqlite") as service:
        results = service.run_batch(_overhead_batch())
    assert not any(result.degraded for result in results)


def test_disabled_fault_points_are_free(tmp_path, benchmark, report,
                                        bench_record):
    uninstall()   # seams present but disabled: the shipped default

    counter = iter(range(10_000))

    def instrumented():
        _run_batch(tmp_path, f"on-{next(counter)}")

    def stripped():
        undo = _strip_seams()
        try:
            _run_batch(tmp_path, f"off-{next(counter)}")
        finally:
            undo()

    # Warm the compile/dispatch caches before measuring either side.
    instrumented()
    stripped()
    on_samples, off_samples = [], []
    for _ in range(ROUNDS):
        for run, samples in ((instrumented, on_samples),
                             (stripped, off_samples)):
            started = time.perf_counter()
            run()
            samples.append(time.perf_counter() - started)
    instrumented_s = statistics.median(on_samples)
    stripped_s = statistics.median(off_samples)
    overhead = (instrumented_s - stripped_s) / stripped_s
    report(f"disabled seams: instrumented {instrumented_s * 1e3:.2f}ms,"
           f" stripped {stripped_s * 1e3:.2f}ms, "
           f"overhead {overhead:+.1%}")
    assert instrumented_s - stripped_s <= max(
        MAX_OVERHEAD * stripped_s, NOISE_FLOOR_SECONDS), \
        f"disabled fault points cost {overhead:.1%} (> 2%)"
    bench_record("disabled_overhead",
                 instrumented_seconds=round(instrumented_s, 6),
                 stripped_seconds=round(stripped_s, 6),
                 overhead=round(overhead, 4))
    benchmark(instrumented)


def _soak_plan(seed: int) -> dict:
    return {"seed": seed, "seams": {
        "store.read": {"kinds": ["error"], "probability": 0.15},
        "store.read.payload": {"kinds": ["corrupt"],
                               "probability": 0.25},
        "store.write": {"kinds": ["error"], "probability": 0.10},
        "worker.execute": {"kinds": ["crash", "error"],
                           "probability": 0.06},
        "genext.load": {"kinds": ["error"], "probability": 0.10},
        "backend.compile": {"kinds": ["error"], "probability": 0.15},
        "scheduler.dispatch": {"kinds": ["error"],
                               "probability": 0.04},
    }}


def _soak_requests(seed: int, count: int) -> list[SpecRequest]:
    # sign_pipeline's first parameter stays static: ``shrink``
    # recurses on it, so a dynamic value unfolds without bound.
    space = [("gcd", [("36", "48", "60", "dyn"), ("18", "27", "dyn")]),
             ("fib", [("3", "6", "9", "dyn")]),
             ("sign_pipeline", [("-4", "2", "8"),
                                ("1", "2", "dyn")])]
    engines = ("online", "online", "offline", "genext")
    rng = random.Random(seed)
    batch = []
    for index in range(count):
        name, pools = space[rng.randrange(len(space))]
        specs = [rng.choice(pool) for pool in pools]
        if "dyn" not in specs:
            specs[-1] = "dyn" if "dyn" in pools[-1] else specs[-1]
        if "dyn" not in specs:
            specs[0] = "dyn"
        batch.append(SpecRequest.create(
            WORKLOADS[name].source, specs,
            engine=engines[rng.randrange(len(engines))],
            id=f"soak-{index}-{name}"))
    return batch


def test_chaos_soak_trajectory(tmp_path, report, bench_record,
                               track_service_stats):
    uninstall()
    count, seed = 120, 20260809
    batch = _soak_requests(seed, count)
    started = time.perf_counter()
    with SpecializationService(
            workers=0, fault_plan=_soak_plan(seed),
            backend="compiled", store_path=tmp_path / "soak.sqlite",
            store_max_bytes=200_000,
            backoff_base=0.0, sleep=lambda _s: None) as service:
        results = service.run_batch(batch)
        stats = service.stats_dict()
        track_service_stats(service.stats)
    elapsed = time.perf_counter() - started
    degraded = sum(1 for result in results if result.degraded)
    injected = sum(stats["faults"].values())
    report(f"chaos soak: {count} requests in {elapsed:.2f}s "
           f"({count / elapsed:.0f} req/s), {degraded} degraded "
           f"({degraded / count:.0%}), {injected} faults injected, "
           f"breaker opens {stats['breaker']['opens']}, "
           f"poison pills {stats['quarantine']['pills']}")
    assert len(results) == count
    assert injected > 0
    assert degraded / count < 0.5
    bench_record("soak",
                 requests=count, seed=seed,
                 elapsed_seconds=round(elapsed, 3),
                 requests_per_second=round(count / elapsed, 1),
                 degraded=degraded,
                 degraded_fraction=round(degraded / count, 4),
                 faults_injected=injected,
                 faults_by_seam=stats["faults"],
                 breaker_opens=stats["breaker"]["opens"],
                 breaker_short_circuits=stats["breaker"]
                 ["short_circuits"],
                 poison_pills=stats["quarantine"]["pills"],
                 quarantined=stats["quarantine"]["short_circuits"])
