"""Experiment: Figures 7-8 — online PPE of the inner product.

Regenerates Figure 8 (and asserts it exactly for size 3), then times
online specialization as the static vector size grows.  Paper shape:
the residual is straight-line code of ``2n`` vrefs with no recursion,
and specialization cost grows linearly in the size.
"""

import pytest

from repro.lang.ast import Call, Prim, walk
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.values import VECTOR
from repro.online import specialize_online
from repro.workloads import WORKLOADS

FIGURE_8 = """
(define (iprod A B)
  (+ (* (vref A 3) (vref B 3))
     (+ (* (vref A 2) (vref B 2))
        (* (vref A 1) (vref B 1)))))
"""


@pytest.fixture
def program():
    return WORKLOADS["inner_product"].program()


def test_fig8_exact(benchmark, report, program, size_suite):
    inputs = [size_suite.input(VECTOR, size=3)] * 2

    result = benchmark(specialize_online, program, inputs, size_suite)

    assert result.program == parse_program(FIGURE_8)
    report("Figure 8 — residual inner product (size 3):",
           pretty_program(result.program),
           f"facet folds: {dict(result.stats.folds_by_facet)}")


@pytest.mark.parametrize("size", [4, 16, 64])
def test_fig8_scaling(benchmark, report, bench_record, program,
                      size_suite, size):
    inputs = [size_suite.input(VECTOR, size=size)] * 2

    result = benchmark(specialize_online, program, inputs, size_suite)

    vrefs = sum(1 for n in walk(result.program.main.body)
                if isinstance(n, Prim) and n.op == "vref")
    calls = sum(1 for d in result.program.defs
                for n in walk(d.body) if isinstance(n, Call))
    assert vrefs == 2 * size, "straight-line residual expected"
    assert calls == 0, "recursion must be fully unfolded"
    report(f"size {size:3d}: residual vrefs={vrefs}, calls={calls}, "
           f"PE steps={result.stats.steps}")
    bench_record(f"size_{size}", vrefs=vrefs, calls=calls,
                 pe_steps=result.stats.steps)
