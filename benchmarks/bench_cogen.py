"""Experiment: the generating extension (staged offline specializer).

The offline strategy's end-game is self-application: specializing the
specializer over a program yields that program's *generating extension*.
``repro.offline.cogen`` builds the artifact directly by staging the
annotated program; this bench measures the ladder the Futamura story
predicts:

    online  >  offline  >  generating extension  >  fused (emitted)

in per-specialization cost (the analysis and the staging are one-time,
amortized).  Residuals are identical across all tiers (asserted).
``benchmarks/bench_genext_ladder.py`` asserts the strict ordering over
a multi-workload corpus; this file keeps the per-tier
``pytest-benchmark`` timing detail on the paper's inner-product
example.  With ``REPRO_BENCH_JSON_DIR`` set, each tier's timing lands
in ``BENCH_cogen.json``.
"""

import pytest

from repro.facets import FacetSuite, VectorSizeFacet
from repro.facets.abstract import AbstractSuite
from repro.facets.abstract.size import STATIC_SIZE
from repro.genext import emit_genext, load_genext
from repro.lang.values import VECTOR
from repro.lattice.bt import BT
from repro.offline.analysis import analyze
from repro.offline.cogen import make_generating_extension
from repro.offline.specializer import OfflineSpecializer
from repro.online import OnlineSpecializer
from repro.workloads import WORKLOADS

SIZE = 24


@pytest.fixture
def setup():
    program = WORKLOADS["inner_product"].program()
    suite = FacetSuite([VectorSizeFacet()])
    abstract_suite = AbstractSuite(suite)
    pattern = [abstract_suite.input(VECTOR, bt=BT.DYNAMIC,
                                    size=STATIC_SIZE)] * 2
    analysis = analyze(program, pattern, abstract_suite)
    inputs = [suite.input(VECTOR, size=SIZE)] * 2
    return program, suite, analysis, inputs


def _record_timing(bench_record, key, benchmark, **extra) -> None:
    """Stage this tier's pytest-benchmark timing for
    ``BENCH_cogen.json`` (stats are absent under
    ``--benchmark-disable``; the row still records its extras)."""
    stats = getattr(benchmark, "stats", None)
    payload = dict(extra)
    if stats is not None:
        payload["median_ms"] = round(stats.stats.median * 1e3, 4)
        payload["min_ms"] = round(stats.stats.min * 1e3, 4)
    bench_record(key, **payload)


def test_online_baseline(benchmark, bench_record, setup):
    program, suite, _analysis, inputs = setup
    benchmark(lambda: OnlineSpecializer(program, suite).specialize(
        inputs))
    _record_timing(bench_record, "online", benchmark)


def test_offline_specializer(benchmark, bench_record, setup):
    program, suite, analysis, inputs = setup
    benchmark(lambda: OfflineSpecializer(analysis, suite).specialize(
        inputs))
    _record_timing(bench_record, "offline", benchmark)


def test_generating_extension(benchmark, report, bench_record, setup):
    program, suite, analysis, inputs = setup
    genext = make_generating_extension(analysis, suite)

    result = benchmark(genext.specialize, inputs)

    # Identical residuals across the ladder.
    offline = OfflineSpecializer(analysis, suite).specialize(inputs)
    online = OnlineSpecializer(program, suite).specialize(inputs)
    assert result.program == offline.program == online.program
    report(f"generating extension: residual identical to both "
           f"specializers; facet evaluations "
           f"{result.stats.facet_evaluations} (same as offline: "
           f"{offline.stats.facet_evaluations})")
    _record_timing(bench_record, "cogen", benchmark,
                   facet_evaluations=result.stats.facet_evaluations)


def test_fused_genext(benchmark, report, bench_record, setup):
    """The emitted-module tier: the same generating extension fused
    with the backend into standalone Python (:mod:`repro.genext`),
    specializing from spec strings with no annotated-AST dispatch."""
    program, suite, analysis, inputs = setup
    source = WORKLOADS["inner_product"].source
    specs = [f"size={SIZE}"] * 2
    module = load_genext(
        emit_genext(source, specs, suite=FacetSuite([VectorSizeFacet()]))
        .python_source)

    result = benchmark(module.specialize_specs, specs)

    offline = OfflineSpecializer(analysis, suite).specialize(inputs)
    assert result.program == offline.program
    report("fused genext: residual identical to the offline "
           "specializer's")
    _record_timing(bench_record, "fused", benchmark)


def test_staging_cost(benchmark, report, bench_record, setup):
    """The one-time compilation is cheap relative to one
    specialization — staging amortizes immediately."""
    program, suite, analysis, _inputs = setup

    genext = benchmark(make_generating_extension, analysis, suite)

    assert genext is not None
    report("staging (compiling the annotated program to closures) is "
           "a one-time cost; see the timing table")
    _record_timing(bench_record, "staging", benchmark)
