"""Experiment: the generating extension (staged offline specializer).

The offline strategy's end-game is self-application: specializing the
specializer over a program yields that program's *generating extension*.
``repro.offline.cogen`` builds the artifact directly by staging the
annotated program; this bench measures the three-way ladder the
Futamura story predicts:

    online specializer  >  offline specializer  >  generating extension

in per-specialization cost (the analysis and the staging are one-time,
amortized).  Residuals are identical across all three (asserted).
"""

import pytest

from repro.facets import FacetSuite, VectorSizeFacet
from repro.facets.abstract import AbstractSuite
from repro.facets.abstract.size import STATIC_SIZE
from repro.lang.values import VECTOR
from repro.lattice.bt import BT
from repro.offline.analysis import analyze
from repro.offline.cogen import make_generating_extension
from repro.offline.specializer import OfflineSpecializer
from repro.online import OnlineSpecializer
from repro.workloads import WORKLOADS

SIZE = 24


@pytest.fixture
def setup():
    program = WORKLOADS["inner_product"].program()
    suite = FacetSuite([VectorSizeFacet()])
    abstract_suite = AbstractSuite(suite)
    pattern = [abstract_suite.input(VECTOR, bt=BT.DYNAMIC,
                                    size=STATIC_SIZE)] * 2
    analysis = analyze(program, pattern, abstract_suite)
    inputs = [suite.input(VECTOR, size=SIZE)] * 2
    return program, suite, analysis, inputs


def test_online_baseline(benchmark, setup):
    program, suite, _analysis, inputs = setup
    benchmark(lambda: OnlineSpecializer(program, suite).specialize(
        inputs))


def test_offline_specializer(benchmark, setup):
    program, suite, analysis, inputs = setup
    benchmark(lambda: OfflineSpecializer(analysis, suite).specialize(
        inputs))


def test_generating_extension(benchmark, report, setup):
    program, suite, analysis, inputs = setup
    genext = make_generating_extension(analysis, suite)

    result = benchmark(genext.specialize, inputs)

    # Identical residuals across the ladder.
    offline = OfflineSpecializer(analysis, suite).specialize(inputs)
    online = OnlineSpecializer(program, suite).specialize(inputs)
    assert result.program == offline.program == online.program
    report(f"generating extension: residual identical to both "
           f"specializers; facet evaluations "
           f"{result.stats.facet_evaluations} (same as offline: "
           f"{offline.stats.facet_evaluations})")


def test_staging_cost(benchmark, report, setup):
    """The one-time compilation is cheap relative to one
    specialization — staging amortizes immediately."""
    program, suite, analysis, _inputs = setup

    genext = benchmark(make_generating_extension, analysis, suite)

    assert genext is not None
    report("staging (compiling the annotated program to closures) is "
           "a one-time cost; see the timing table")
