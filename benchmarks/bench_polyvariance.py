"""Ablation: monovariant (Figure 4) vs. polyvariant facet analysis.

Figure 4's ``SigEnv`` joins all call sites into one signature per
function; the polyvariant extension keeps one per argument pattern.
Shape: on call-pattern-diverse programs polyvariance recovers Static
results the join destroys, at the cost of more fixpoint cells; on
single-pattern programs the two coincide.
"""

import pytest

from repro.facets import FacetSuite, SignFacet
from repro.facets.abstract import AbstractSuite
from repro.lang.ast import Call, Const, FunDef, If, Prim, Var
from repro.lang.parser import parse_program
from repro.lang.program import Program
from repro.lattice.bt import BT
from repro.offline.analysis import analyze
from repro.offline.polyvariant import analyze_polyvariant


def _shared_helper_program(callers: int) -> Program:
    """``main`` fans out to one shared helper from ``callers`` sites,
    half static, half dynamic."""
    helper = FunDef("helper", ("v",),
                    Prim("+", (Var("v"), Const(1))))
    body: object = Const(0)
    for i in range(callers):
        arg = Var("s") if i % 2 == 0 else Var("d")
        body = Prim("+", (Call("helper", (arg,)), body))
    main = FunDef("main", ("s", "d"), body)
    return Program((main, helper))


@pytest.fixture
def suite():
    return AbstractSuite(FacetSuite([SignFacet()]))


@pytest.mark.parametrize("callers", [2, 8])
def test_monovariant(benchmark, report, suite, callers):
    program = _shared_helper_program(callers)
    inputs = [suite.static("int"), suite.dynamic("int")]

    result = benchmark(analyze, program, inputs, suite)

    bt = result.signatures["helper"].result.bt
    report(f"monovariant, {callers} call sites: helper result {bt}")
    assert bt is BT.DYNAMIC  # the join poisons the static sites


@pytest.mark.parametrize("callers", [2, 8])
def test_polyvariant(benchmark, report, suite, callers):
    program = _shared_helper_program(callers)
    inputs = [suite.static("int"), suite.dynamic("int")]

    result = benchmark(analyze_polyvariant, program, inputs, suite)

    best = result.best_result_bt("helper")
    report(f"polyvariant, {callers} call sites: "
           f"{result.variant_count('helper')} variants, best result "
           f"{best}")
    assert best is BT.STATIC  # the static pattern survives
    assert result.variant_count("helper") >= 2


def test_sign_dispatch_precision(benchmark, report, suite):
    """Facet-level polyvariance: the same function called with pos and
    neg arguments — monovariance joins the signs away."""
    program = parse_program("""
        (define (main a b) (+ (test a) (test b)))
        (define (test v) (if (< v 0) 1 2))
    """)
    inputs = [suite.input("int", bt=BT.DYNAMIC, sign="pos"),
              suite.input("int", bt=BT.DYNAMIC, sign="neg")]

    result = benchmark(analyze_polyvariant, program, inputs, suite)

    assert result.signatures["test"].result.bt is BT.DYNAMIC
    assert result.best_result_bt("test") is BT.STATIC
    report("sign dispatch: monovariant result Dynamic, polyvariant "
           f"variants {result.variant_count('test')} with best result "
           "Static — per-pattern sign information survives")
