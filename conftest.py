"""Repo-level pytest glue: golden-snapshot flag + timeout fallback.

``--update-golden`` regenerates the residual snapshots under
``tests/golden/snapshots/`` instead of asserting against them; it must
live in this rootdir conftest because pytest only honours
``pytest_addoption`` here.

The rest is a per-test timeout fallback.

``pyproject.toml`` declares ``timeout = 120`` for pytest-timeout (a dev
dependency).  When the plugin is not installed this conftest registers
the same ini option and enforces it with ``SIGALRM``, so a wedged
specializer loop still fails the test instead of hanging the run.  The
fallback is a no-op off the main thread or on platforms without
``SIGALRM`` (e.g. Windows), and it steps aside entirely — no duplicate
option registration — once pytest-timeout is available.
"""

from __future__ import annotations

import signal
from importlib.util import find_spec

import pytest

_HAVE_PYTEST_TIMEOUT = find_spec("pytest_timeout") is not None
_HAVE_SIGALRM = hasattr(signal, "SIGALRM")


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/ snapshots instead of comparing")
    if _HAVE_PYTEST_TIMEOUT:
        return
    parser.addini(
        "timeout",
        "per-test timeout in seconds (fallback for pytest-timeout)",
        default="0")


def pytest_configure(config):
    if _HAVE_PYTEST_TIMEOUT:
        return
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test timeout (fallback for pytest-timeout)")


def _timeout_for(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    try:
        return float(item.config.getini("timeout") or 0)
    except (TypeError, ValueError):
        return 0.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    seconds = 0.0
    if not _HAVE_PYTEST_TIMEOUT and _HAVE_SIGALRM:
        seconds = _timeout_for(item)
    if seconds <= 0:
        yield
        return

    def _expired(signum, frame):
        # pytest.fail raises an OutcomeException (BaseException-derived)
        # on purpose: the engines' never-raise seams (engine_guard, the
        # service's degradation catches) swallow any plain Exception —
        # a TimeoutError fired mid-specialization would be converted
        # into a graceful degradation and the test would keep running
        # unprotected.  pytest-timeout's signal method does the same.
        pytest.fail(f"{item.nodeid} exceeded the {seconds:g}s timeout")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
